"""Backend parity: every registered backend must agree with the
sequential oracle on the same systems.

Parametrized by backend name so the CI matrix can select one slice with
``-k "python" / "numpy" / "pram"``.
"""

import numpy as np
import pytest

from repro.core import (
    CONCAT,
    FLOAT_ADD,
    GIRSystem,
    OrdinaryIRSystem,
    RationalRecurrence,
    run_gir,
    run_moebius_sequential,
    run_ordinary,
)
from repro.core.operators import modular_add
from repro.engine import solve

ORDINARY_BACKENDS = ["python", "numpy", "pram"]
PLANNED_BACKENDS = ["python", "numpy"]


def random_ordinary(rng, n, extra, op=CONCAT, float_values=False):
    m = n + extra
    g = rng.permutation(m)[:n].tolist()
    f = rng.integers(0, m, size=n).tolist()
    if float_values:
        initial = rng.uniform(-2.0, 2.0, size=m).tolist()
    else:
        initial = [(f"s{j}",) for j in range(m)]
    return OrdinaryIRSystem.build(initial, g, f, op)


def random_gir(rng, n, extra, distinct_g=True):
    op = modular_add(97)
    if distinct_g:
        m = n + extra
        g = rng.permutation(m)[:n].tolist()
    else:
        m = max(extra, 1)
        g = rng.integers(0, m, size=n).tolist()
    f = rng.integers(0, m, size=n).tolist()
    h = rng.integers(0, m, size=n).tolist()
    initial = rng.integers(0, 97, size=m).tolist()
    return GIRSystem.build(initial, g, f, h, op)


def adversarial_ordinary():
    """Hand-built worst cases: empty, self-reference, star fan-in,
    reversed assignment order, a chain written back-to-front."""
    yield OrdinaryIRSystem.build([("a",)], [], [], CONCAT)
    yield OrdinaryIRSystem.build([("a",), ("b",)], [1], [1], CONCAT)
    # every iteration reads the same cell (CREW broadcast)
    yield OrdinaryIRSystem.build(
        [(f"s{j}",) for j in range(6)], [1, 2, 3, 4, 5], [0, 0, 0, 0, 0], CONCAT
    )
    # chain assigned in reverse iteration order: deep trace, late writers
    n = 12
    yield OrdinaryIRSystem.build(
        [(f"s{j}",) for j in range(n + 1)],
        list(range(n, 0, -1)),
        list(range(n - 1, -1, -1)),
        CONCAT,
    )
    # two chains sharing one root, different lengths
    yield OrdinaryIRSystem.build(
        [(f"s{j}",) for j in range(8)],
        [1, 2, 3, 5, 6],
        [0, 1, 2, 0, 5],
        CONCAT,
    )


@pytest.mark.parametrize("backend", ORDINARY_BACKENDS)
class TestOrdinaryParity:
    def test_adversarial_systems(self, backend):
        for sys_ in adversarial_ordinary():
            assert solve(sys_, backend=backend).values == run_ordinary(sys_)

    def test_seeded_random_exact(self, backend):
        rng = np.random.default_rng(20260806)
        for trial in range(8):
            sys_ = random_ordinary(rng, n=rng.integers(1, 20), extra=4)
            got = solve(sys_, backend=backend).values
            assert got == run_ordinary(sys_), f"trial {trial}"

    def test_seeded_random_float_tolerance(self, backend):
        rng = np.random.default_rng(7)
        for _ in range(4):
            sys_ = random_ordinary(
                rng, n=12, extra=3, op=FLOAT_ADD, float_values=True
            )
            got = solve(sys_, backend=backend).values
            want = run_ordinary(sys_)
            assert got == pytest.approx(want, rel=1e-12, abs=1e-12)

    def test_checked_against_oracle(self, backend):
        rng = np.random.default_rng(99)
        sys_ = random_ordinary(rng, n=10, extra=2)
        result = solve(sys_, backend=backend, checked=True, check_sample=None)
        assert result.values == run_ordinary(sys_)


@pytest.mark.parametrize("backend", PLANNED_BACKENDS)
class TestGIRParity:
    def test_seeded_random_distinct_g(self, backend):
        rng = np.random.default_rng(11)
        for _ in range(6):
            sys_ = random_gir(rng, n=int(rng.integers(1, 14)), extra=3)
            assert solve(sys_, backend=backend).values == run_gir(sys_)

    def test_seeded_random_repeated_g(self, backend):
        rng = np.random.default_rng(13)
        for _ in range(6):
            sys_ = random_gir(
                rng, n=int(rng.integers(1, 12)), extra=4, distinct_g=False
            )
            assert solve(sys_, backend=backend).values == run_gir(sys_)

    def test_no_dispatch_path(self, backend):
        # force the CAP pipeline even on ordinary-shaped systems
        rng = np.random.default_rng(17)
        sys_ = random_gir(rng, n=8, extra=2)
        got = solve(
            sys_, backend=backend, allow_ordinary_dispatch=False
        ).values
        assert got == run_gir(sys_)


@pytest.mark.parametrize("backend", PLANNED_BACKENDS)
class TestMoebiusParity:
    def test_seeded_random_rational(self, backend):
        rng = np.random.default_rng(23)
        for _ in range(4):
            n = int(rng.integers(2, 12))
            m = n + 2
            g = rng.permutation(m)[:n].tolist()
            f = rng.integers(0, m, size=n).tolist()
            rec = RationalRecurrence.build(
                rng.uniform(0.5, 2.0, size=m).tolist(),
                g,
                f,
                rng.uniform(0.5, 1.5, size=n).tolist(),
                rng.uniform(-1.0, 1.0, size=n).tolist(),
                rng.uniform(0.1, 0.4, size=n).tolist(),
                [1.0] * n,
            )
            got = solve(rec, backend=backend).values
            want = run_moebius_sequential(rec)
            assert got == pytest.approx(want, rel=1e-9, abs=1e-11)


class TestPRAMLimits:
    def test_gir_rejected(self):
        sys_ = GIRSystem.build([1, 2], [1], [0], [0], modular_add(97))
        with pytest.raises(ValueError, match="does not support"):
            solve(sys_, backend="pram")

    def test_metrics_payload(self):
        sys_ = OrdinaryIRSystem.build(
            [(f"s{j}",) for j in range(5)], [1, 2, 3, 4], [0, 1, 2, 3], CONCAT
        )
        result = solve(sys_, backend="pram", options={"processors": 2})
        assert result.metrics is not None
        assert result.plan is None  # the machine does not plan
