"""Removed legacy entry points: every ``repro.core`` solver shim is
gone, and the module-level tombstones name the engine replacement."""

import pytest

import repro
import repro.core
import repro.core.gir
import repro.core.moebius
import repro.core.ordinary

REMOVED = [
    "solve_ordinary",
    "solve_ordinary_numpy",
    "solve_gir",
    "solve_moebius",
    "solve_affine_numpy",
    "solve_rational_numpy",
]

HOME_MODULE = {
    "solve_ordinary": repro.core.ordinary,
    "solve_ordinary_numpy": repro.core.ordinary,
    "solve_gir": repro.core.gir,
    "solve_moebius": repro.core.moebius,
    "solve_affine_numpy": repro.core.moebius,
    "solve_rational_numpy": repro.core.moebius,
}


class TestPackageTombstones:
    @pytest.mark.parametrize("name", REMOVED)
    def test_core_attribute_gone(self, name):
        with pytest.raises(AttributeError) as exc:
            getattr(repro.core, name)
        msg = str(exc.value)
        assert name in msg
        assert "removed in repro 1.2.0" in msg
        assert "repro.engine.solve" in msg

    @pytest.mark.parametrize("name", REMOVED)
    def test_home_module_attribute_gone(self, name):
        with pytest.raises(AttributeError) as exc:
            getattr(HOME_MODULE[name], name)
        msg = str(exc.value)
        assert name in msg
        assert "removed in repro 1.2.0" in msg
        assert "repro.engine.solve" in msg

    # the two fast-path wrappers were never re-exported at the root
    @pytest.mark.parametrize("name", REMOVED[:4])
    def test_root_package_names_both_removals(self, name):
        with pytest.raises(AttributeError) as exc:
            getattr(repro, name)
        msg = str(exc.value)
        assert name in msg
        assert "repro.solve(" in msg

    def test_unknown_attribute_is_plain_error(self):
        with pytest.raises(AttributeError) as exc:
            repro.core.no_such_thing
        assert "no attribute" in str(exc.value)
        assert "repro.engine" not in str(exc.value)

    def test_star_import_surface_excludes_solvers(self):
        exported = set(repro.core.__all__)
        assert not exported & set(REMOVED)

    def test_version_reflects_removal(self):
        assert repro.__version__ == "1.2.0"


class TestImportErrors:
    """``from repro.core import solve_x`` must fail at import time, not
    silently bind a tombstone."""

    @pytest.mark.parametrize("name", REMOVED)
    def test_from_import_raises(self, name):
        with pytest.raises(ImportError):
            exec(f"from repro.core import {name}")
