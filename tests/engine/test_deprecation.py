"""Deprecation shims: each legacy entry point warns exactly once per
process and names its engine replacement."""

import warnings

import pytest

from repro.core import (
    CONCAT,
    GIRSystem,
    OrdinaryIRSystem,
    RationalRecurrence,
    solve_gir,
    solve_moebius,
    solve_ordinary,
    solve_ordinary_numpy,
)
from repro.core.moebius import solve_affine_numpy, solve_rational_numpy
from repro.core.operators import modular_add
from repro.engine import reset_deprecation_warnings


@pytest.fixture(autouse=True)
def _rearmed():
    reset_deprecation_warnings()
    yield
    reset_deprecation_warnings()


def _chain():
    return OrdinaryIRSystem.build(
        [(f"s{j}",) for j in range(5)], [1, 2, 3, 4], [0, 1, 2, 3], CONCAT
    )


def _rec():
    return RationalRecurrence.build(
        [1.0, 1.0], [1], [0], [2.0], [1.0], [0.0], [1.0]
    )


def _collect(fn):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        fn()
    return [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestWarnOnce:
    def test_ordinary_warns_once_and_names_replacement(self):
        first = _collect(lambda: solve_ordinary(_chain()))
        assert len(first) == 1
        msg = str(first[0].message)
        assert "repro.core.ordinary.solve_ordinary is deprecated" in msg
        assert "repro.engine.solve" in msg
        assert _collect(lambda: solve_ordinary(_chain())) == []

    def test_each_entry_point_has_its_own_warning(self):
        sys_ = _chain()
        gir = GIRSystem.build([1, 2, 3], [1], [0], [0], modular_add(97))
        calls = [
            (lambda: solve_ordinary(sys_), "solve_ordinary"),
            (lambda: solve_ordinary_numpy(sys_), "solve_ordinary_numpy"),
            (lambda: solve_gir(gir), "solve_gir"),
            (lambda: solve_moebius(_rec()), "solve_moebius"),
            (lambda: solve_affine_numpy(_rec()), "solve_affine_numpy"),
            (lambda: solve_rational_numpy(_rec()), "solve_rational_numpy"),
        ]
        for fn, name in calls:
            caught = _collect(fn)
            assert len(caught) == 1, name
            assert name in str(caught[0].message)
            assert "repro.engine.solve" in str(caught[0].message)

    def test_reset_rearms(self):
        assert len(_collect(lambda: solve_ordinary(_chain()))) == 1
        assert _collect(lambda: solve_ordinary(_chain())) == []
        reset_deprecation_warnings()
        assert len(_collect(lambda: solve_ordinary(_chain()))) == 1

    def test_shim_results_unaffected_by_warning_state(self):
        sys_ = _chain()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            reset_deprecation_warnings()
            with pytest.raises(DeprecationWarning):
                solve_ordinary(sys_)
        # after the raise, the path still solves correctly
        out, _ = solve_ordinary(sys_)
        assert out[-1] == tuple(f"s{j}" for j in range(5))
