"""GIRPlan v2 end-to-end: serialization, batched evaluation, shm.

The array-backed CAP pipeline's integration surface: the flat CSR
power table must round-trip through JSON (and migrate v1 payloads),
the batched and per-row evaluators must agree with the sequential
oracle bit-for-bit, ``solve_batch`` must sweep value vectors through
one plan, and the shm pool must serve the same bits at Fig.-5 scale
(``n = 100,000``) for the CI worker counts -- including chaos-injected
failover back down the ladder.
"""

import json

import pytest

from repro.core import GIRSystem, run_gir
from repro.core.operators import modular_add, modular_mul
from repro.engine import plan_from_dict, plan_to_dict, solve, solve_batch
from repro.engine.plan import PowerTable
from repro.engine.planner import PlanCache

MOD = 10**9 + 7
BIG_N = 100_000


def fibonacci_powers(n, op=None):
    """x[i+2] = x[i+1] op x[i]: the paper's Fig. 5 workload."""
    return GIRSystem.build(
        list(range(1, n + 3)),
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        list(range(n)),
        op or modular_add(MOD),
    )


def leafy(n, k=4):
    """Traces keep up to ``k`` distinct leaf cells (multi-entry rows)."""
    return GIRSystem.build(
        list(range(1, n + k + 1)),
        [i + k for i in range(n)],
        [i + k - 1 for i in range(n)],
        [i % k for i in range(n)],
        modular_add(MOD),
    )


def cap_plan(system):
    result = solve(system, cache=PlanCache())
    assert result.plan.dispatch is None
    return result.plan


class TestSerialization:
    def test_power_table_payload_round_trip(self):
        plan = cap_plan(leafy(60))
        payload = json.loads(json.dumps(plan.table.to_payload()))
        restored = PowerTable.from_payload(payload)
        assert (restored.row_ptr == plan.table.row_ptr).all()
        assert (restored.cells == plan.table.cells).all()
        assert restored.exponents == plan.table.exponents

    def test_v2_plan_json_round_trip_replays(self):
        system = leafy(80)
        plan = cap_plan(system)
        restored = plan_from_dict(json.loads(json.dumps(plan_to_dict(plan))))
        assert restored.fingerprint == plan.fingerprint
        assert restored.table.nnz == plan.table.nnz
        replay = solve(system, plan=restored, cache=PlanCache())
        assert replay.values == run_gir(system)

    def test_v1_payload_migrates(self):
        # v1 serialized per-row [(cell, power), ...] pair lists under
        # "tables"; from_dict must rebuild the flat CSR transparently.
        system = leafy(40)
        plan = cap_plan(system)
        payload = plan_to_dict(plan)
        del payload["table"]
        payload["tables"] = [
            sorted(d.items()) for d in plan.table.row_dicts()
        ]
        migrated = plan_from_dict(json.loads(json.dumps(payload)))
        assert migrated.table is not None
        assert (migrated.table.row_ptr == plan.table.row_ptr).all()
        assert (migrated.table.cells == plan.table.cells).all()
        assert migrated.table.exponents == plan.table.exponents
        replay = solve(system, plan=migrated, cache=PlanCache())
        assert replay.values == run_gir(system)

    def test_exact_bigint_exponents_survive_json(self):
        # Fibonacci exponents at n=120 exceed int64; JSON carries exact
        # Python ints, so the round trip must not truncate.
        plan = cap_plan(fibonacci_powers(120))
        restored = plan_from_dict(json.loads(json.dumps(plan_to_dict(plan))))
        top = max(restored.table.exponents)
        assert top == max(plan.table.exponents)
        assert top.bit_length() > 63


class TestEvaluationModes:
    @pytest.mark.parametrize("system_fn", (fibonacci_powers, leafy))
    def test_rows_and_batched_match_oracle(self, system_fn):
        system = system_fn(3000)
        oracle = run_gir(system)
        plan = cap_plan(system)
        for mode in ("rows", "batched", "auto"):
            res = solve(
                system,
                backend="numpy",
                plan=plan,
                cache=PlanCache(),
                options={"gir_eval": mode},
            )
            assert res.values == oracle, mode

    def test_modular_mul_exact(self):
        system = fibonacci_powers(400, modular_mul(1009))
        oracle = run_gir(system)
        for mode in ("rows", "batched"):
            res = solve(
                system,
                backend="numpy",
                cache=PlanCache(),
                options={"gir_eval": mode},
            )
            assert res.values == oracle, mode

    def test_python_backend_matches(self):
        system = leafy(500)
        res = solve(system, backend="python", cache=PlanCache())
        assert res.values == run_gir(system)

    def test_unknown_eval_mode_rejected(self):
        with pytest.raises(ValueError, match="gir_eval"):
            solve(
                leafy(10),
                backend="numpy",
                cache=PlanCache(),
                options={"gir_eval": "warp"},
            )


class TestSolveBatch:
    def test_batch_sweeps_one_plan(self):
        system = leafy(300)
        k = 5
        batches = [
            [(v * 7 + j) % MOD or 1 for v in range(len(system.initial))]
            for j in range(k)
        ]
        rows = solve_batch(system, batches, cache=PlanCache())
        import dataclasses

        for j in range(k):
            expect = run_gir(dataclasses.replace(system, initial=batches[j]))
            assert rows[j] == expect


class TestShmScale:
    """The acceptance bar: shm bit-identical to the python backend at
    n >= 100,000 for 2 and 4 workers."""

    @pytest.fixture(scope="class")
    def big(self):
        system = fibonacci_powers(BIG_N)
        reference = solve(system, backend="python", cache=PlanCache())
        return system, reference.values

    @pytest.mark.parametrize("workers", (2, 4))
    def test_shm_bit_identical_at_scale(self, big, workers):
        system, expect = big
        res = solve(
            system,
            backend="shm",
            cache=PlanCache(),
            options={"workers": workers},
        )
        assert res.backend == "shm"
        assert res.values == expect

    def test_chaos_crash_fails_over_to_numpy(self, big):
        system, expect = big
        res = solve(
            system,
            backend="shm",
            cache=PlanCache(),
            options={
                "workers": 2,
                "_test_crash": {"rank": 0, "round": 0, "once": False},
            },
        )
        assert res.backend == "numpy"
        assert res.failover_from == "shm"
        assert res.values == expect
