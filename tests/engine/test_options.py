"""EngineOptions: the unified typed front-door configuration, the
one-release loose-kwarg deprecation path, and the SessionPool."""

import warnings

import pytest

from repro.core.equations import OrdinaryIRSystem
from repro.core.operators import ADD
from repro.engine import (
    EngineOptions,
    Session,
    SessionPool,
    reset_deprecation_warnings,
    solve,
    solve_batch,
)
from repro.engine.options import OPTION_KEYS
from repro.resilience import SolvePolicy


def chain(n=16):
    return OrdinaryIRSystem.build(
        list(range(n + 1)), list(range(1, n + 1)), list(range(0, n)), ADD
    )


class TestEngineOptions:
    def test_defaults(self):
        opts = EngineOptions()
        assert opts.backend == "auto"
        assert opts.policy is None
        assert not opts.checked
        assert opts.check_sample == 64
        assert not opts.verify_plan
        assert opts.failover
        assert opts.workers is None
        assert opts.backend_options == {}

    def test_policy_accepts_dict(self):
        opts = EngineOptions(policy={"max_rounds": 3})
        assert isinstance(opts.policy, SolvePolicy)
        assert opts.policy.max_rounds == 3

    def test_policy_unknown_key_named(self):
        with pytest.raises(ValueError, match="bogus"):
            EngineOptions(policy={"bogus": 1})

    def test_from_dict_unknown_keys_name_valid_set(self):
        with pytest.raises(ValueError) as exc:
            EngineOptions.from_dict({"backend": "numpy", "nope": 1})
        assert "nope" in str(exc.value)
        for key in OPTION_KEYS:
            assert key in str(exc.value)

    def test_merged_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="typo"):
            EngineOptions().merged(typo=True)

    def test_to_dict_from_dict_roundtrip(self):
        opts = EngineOptions(
            backend="numpy",
            policy=SolvePolicy(max_rounds=5, on_exhaustion="partial"),
            checked=True,
            check_sample=None,
            workers=2,
            backend_options={"path": "auto"},
        )
        assert EngineOptions.from_dict(opts.to_dict()) == opts

    def test_legacy_mapping_lifts_workers(self):
        opts = EngineOptions.from_value({"workers": 3, "path": "auto"})
        assert opts.workers == 3
        assert opts.backend_options == {"path": "auto"}
        assert opts.request_options() == {"path": "auto", "workers": 3}

    def test_key_distinguishes_configurations(self):
        base = EngineOptions(backend="numpy")
        assert base.key() == EngineOptions(backend="numpy").key()
        assert base.key() != EngineOptions(backend="python").key()
        assert base.key() != base.replace(checked=True).key()
        assert (
            base.key()
            != base.replace(backend_options={"path": "object"}).key()
        )

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            EngineOptions(workers=0)

    def test_invalid_backend_type(self):
        with pytest.raises(ValueError, match="backend"):
            EngineOptions(backend=7)


class TestFrontDoorIntegration:
    def test_solve_accepts_options(self):
        result = solve(chain(), options=EngineOptions(backend="numpy"))
        assert result.backend == "numpy"
        assert result.values[-1] == sum(range(17))

    def test_solve_batch_accepts_options(self):
        system = chain(8)
        rows = solve_batch(
            system,
            [list(range(9)), [2 * v for v in range(9)]],
            options=EngineOptions(backend="numpy"),
        )
        assert rows[1][-1] == 2 * rows[0][-1]

    def test_session_accepts_options(self):
        session = Session(chain(), options=EngineOptions(backend="numpy"))
        assert session.options.backend == "numpy"
        assert session.solve().values[-1] == sum(range(17))

    def test_loose_kwargs_warn_once_naming_replacement(self):
        reset_deprecation_warnings()
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            solve(chain(), backend="numpy")
            solve(chain(), backend="python")
        relevant = [
            w
            for w in caught
            if issubclass(w.category, DeprecationWarning)
            and "EngineOptions" in str(w.message)
        ]
        assert len(relevant) == 1
        reset_deprecation_warnings()

    def test_loose_kwarg_overrides_options(self):
        reset_deprecation_warnings()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            result = solve(
                chain(),
                backend="python",
                options=EngineOptions(backend="numpy"),
            )
        assert result.backend == "python"
        reset_deprecation_warnings()

    def test_unknown_kwarg_still_names_valid_set(self):
        with pytest.raises(ValueError) as exc:
            solve(chain(), nonsense=True)
        assert "nonsense" in str(exc.value)
        assert "options" in str(exc.value)

    def test_result_envelope_defaults_outside_serve(self):
        result = solve(chain(), options=EngineOptions(backend="numpy"))
        assert result.request_id is None
        assert result.coalesced is False
        assert result.queue_wait_s is None


class TestSessionPool:
    def test_lease_reuses_session(self):
        pool = SessionPool(capacity=4)
        system = chain()
        with pool.lease(system) as first:
            pass
        with pool.lease(system) as second:
            assert second is first
        assert len(pool) == 1

    def test_distinct_options_distinct_sessions(self):
        pool = SessionPool(capacity=4)
        system = chain()
        a = pool.acquire(system, options=EngineOptions(backend="numpy"))
        b = pool.acquire(system, options=EngineOptions(backend="python"))
        assert a is not b
        pool.release(a)
        pool.release(b)
        assert len(pool) == 2

    def test_idle_lru_eviction(self):
        pool = SessionPool(capacity=1)
        a = pool.acquire(chain(4))
        pool.release(a)
        b = pool.acquire(chain(5))
        pool.release(b)
        assert len(pool) == 1
        # the survivor is the most recently used entry
        c = pool.acquire(chain(5))
        assert c is b
        pool.release(c)

    def test_leased_sessions_never_evicted(self):
        pool = SessionPool(capacity=1)
        a = pool.acquire(chain(4))
        b = pool.acquire(chain(5))  # over capacity, but `a` is leased
        assert len(pool) == 2
        pool.release(a)
        pool.release(b)
        assert len(pool) == 1

    def test_release_unknown_session_rejected(self):
        pool = SessionPool()
        stray = Session(chain())
        with pytest.raises(ValueError, match="never leased"):
            pool.release(stray)

    def test_clear_keeps_leased(self):
        pool = SessionPool(capacity=4)
        a = pool.acquire(chain(4))
        b = pool.acquire(chain(5))
        pool.release(b)
        assert pool.clear() == 1
        assert pool.stats()["sessions"] == 1
        pool.release(a)

    def test_capacity_validated(self):
        with pytest.raises(ValueError, match="capacity"):
            SessionPool(capacity=0)
