"""Session: the pinned-plan serving API, and front-door kwarg
normalization.

A Session derives the Problem, builds the plan, and resolves the
backend once at construction; every subsequent ``solve`` /
``solve_batch`` replays the pinned plan with zero plan-cache traffic.
These tests assert the pinning (cache counters stay flat across
serves), result parity against the one-shot front door, the serving
counters, and the shared ``ValueError``-on-unknown-kwarg contract
across solve / execute / solve_batch / Session.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro import obs
from repro.core import (
    ADD,
    CONCAT,
    FLOAT_MUL,
    GIRSystem,
    MAX,
    OrdinaryIRSystem,
    run_gir,
    run_ordinary,
)
from repro.core.moebius import AffineRecurrence, run_moebius_sequential
from repro.engine import (
    Session,
    clear_plan_cache,
    execute,
    plan_cache_info,
    solve,
    solve_batch,
)
from repro.resilience import SolvePolicy


def int_chain(n=120, seed=0):
    rng = np.random.default_rng(seed)
    return OrdinaryIRSystem.build(
        rng.integers(0, 50, size=n + 1).tolist(),
        np.arange(1, n + 1),
        np.arange(n),
        ADD,
    )


def affine_rec(n=90, seed=1):
    rng = np.random.default_rng(seed)
    return AffineRecurrence.build(
        rng.random(n + 1).tolist(),
        list(range(1, n + 1)),
        list(range(n)),
        a=(rng.random(n) + 0.5).tolist(),
        b=rng.random(n).tolist(),
    )


class TestPinnedPlan:
    def test_plan_built_at_construction(self):
        sys_ = int_chain()
        session = Session(sys_, backend="numpy")
        assert session.plan is not None
        assert session.family == "ordinary"
        assert session.backend == "numpy"
        assert session.fingerprint == session.problem.fingerprint()

    def test_serving_does_no_cache_traffic(self):
        sys_ = int_chain()
        session = Session(sys_, backend="numpy")
        clear_plan_cache()
        before = plan_cache_info()
        for _ in range(4):
            session.solve()
        after = plan_cache_info()
        assert after["hits"] == before["hits"]
        assert after["misses"] == before["misses"]

    def test_solve_matches_front_door(self):
        sys_ = int_chain(seed=2)
        session = Session(sys_, backend="numpy")
        assert session.solve().values == solve(sys_, backend="numpy").values

    def test_solve_with_new_values(self):
        sys_ = int_chain(n=80, seed=3)
        session = Session(sys_, backend="numpy")
        rng = np.random.default_rng(99)
        fresh = rng.integers(0, 50, size=sys_.m).tolist()
        served = session.solve(fresh)
        import dataclasses

        oracle = run_ordinary(dataclasses.replace(sys_, initial=fresh))
        assert served.values == oracle

    def test_wrong_length_values_rejected(self):
        session = Session(int_chain(n=30), backend="numpy")
        with pytest.raises(ValueError, match="m="):
            session.solve([1, 2, 3])

    def test_object_operand_session(self):
        initial = [(name,) for name in "abcde"]
        sys_ = OrdinaryIRSystem.build(initial, [1, 2, 3, 4], [0, 1, 2, 3], CONCAT)
        session = Session(sys_)  # auto -> numpy, object path
        assert session.solve().values == run_ordinary(sys_)

    def test_gir_plan_pinned_from_first_solve(self):
        sys_ = GIRSystem.build(
            [1, 2, 3, 4, 5], [1, 2, 3], [0, 1, 2], [4, 4, 4], MAX
        )
        session = Session(sys_, backend="numpy")
        assert session.plan is None  # GIR planning runs inside the executor
        first = session.solve()
        assert first.values == run_gir(sys_)
        assert session.plan is not None
        pinned = session.plan
        session.solve()
        assert session.plan is pinned

    def test_moebius_session(self):
        rec = affine_rec()
        session = Session(rec, backend="numpy")
        assert session.plan is not None
        assert session.solve().values == pytest.approx(
            run_moebius_sequential(rec)
        )

    def test_shm_session(self):
        sys_ = int_chain(n=200, seed=4)
        session = Session(sys_, backend="shm", options={"workers": 2})
        oracle = run_ordinary(sys_)
        assert session.solve().values == oracle
        assert session.solve().values == oracle  # pool + schedule reused

    def test_policy_rejected_on_pram(self):
        with pytest.raises(ValueError, match="SolvePolicy"):
            Session(
                int_chain(n=20),
                backend="pram",
                policy=SolvePolicy(max_rounds=1),
            )


class TestServingCounters:
    def test_session_solves_counted(self):
        sys_ = int_chain(seed=5)
        with obs.observed() as (_tracer, registry):
            session = Session(sys_, backend="numpy")
            for _ in range(3):
                session.solve()
        count = registry.value(
            "engine.session.solves", backend="numpy", family="ordinary"
        )
        assert count == 3

    def test_batch_counts_rows_and_batches(self):
        sys_ = int_chain(n=60, seed=6)
        rng = np.random.default_rng(7)
        batch = rng.integers(0, 50, size=(5, sys_.m)).tolist()
        with obs.observed() as (_tracer, registry):
            session = Session(sys_, backend="numpy")
            rows = session.solve_batch(batch)
        assert len(rows) == 5
        assert (
            registry.value(
                "engine.session.solves", backend="numpy", family="ordinary"
            )
            == 5
        )
        assert (
            registry.value("engine.session.batch.solves", backend="numpy") == 1
        )


class TestSessionBatch:
    def test_batch_matches_per_row(self):
        sys_ = int_chain(n=70, seed=8)
        rng = np.random.default_rng(9)
        batch = rng.integers(0, 50, size=(4, sys_.m)).tolist()
        session = Session(sys_, backend="numpy")
        rows = session.solve_batch(batch)
        import dataclasses

        for row_in, row_out in zip(batch, rows):
            assert row_out == run_ordinary(
                dataclasses.replace(sys_, initial=list(row_in))
            )

    def test_batch_rejected_without_capability(self):
        session = Session(int_chain(n=20), backend="python")
        with pytest.raises(ValueError, match="batch"):
            session.solve_batch([[0] * 21])


class TestMoebiusBatch:
    def test_affine_batch_stacked_matches_per_row(self):
        rec = affine_rec(n=60, seed=10)
        rng = np.random.default_rng(11)
        batch = rng.random((5, len(rec.initial))).tolist()
        rows = solve_batch(rec, batch, backend="numpy")
        import dataclasses

        for row_in, row_out in zip(batch, rows):
            one = solve(
                dataclasses.replace(rec, initial=list(row_in)),
                backend="numpy",
            )
            assert row_out == pytest.approx(one.values, rel=0, abs=0)

    def test_fraction_batch_falls_back_per_row(self):
        n = 12
        rec = AffineRecurrence.build(
            [Fraction(k + 1, 3) for k in range(n + 1)],
            list(range(1, n + 1)),
            list(range(n)),
            a=[Fraction(1, 2)] * n,
            b=[Fraction(1, 3)] * n,
        )
        batch = [
            [Fraction(k + 2, 5) for k in range(n + 1)],
            [Fraction(k + 7, 2) for k in range(n + 1)],
        ]
        rows = solve_batch(rec, batch, backend="numpy")
        import dataclasses

        for row_in, row_out in zip(batch, rows):
            seq = run_moebius_sequential(
                dataclasses.replace(rec, initial=list(row_in))
            )
            assert row_out == seq
            assert all(isinstance(v, Fraction) for v in row_out)

    def test_session_moebius_batch(self):
        rec = affine_rec(n=40, seed=12)
        rng = np.random.default_rng(13)
        batch = rng.random((3, len(rec.initial))).tolist()
        session = Session(rec, backend="numpy")
        rows = session.solve_batch(batch)
        assert rows == solve_batch(rec, batch, backend="numpy")


class TestKwargNormalization:
    """Every front door takes the same ``backend= / policy= / checked=``
    keyword family and rejects anything else with a ValueError that
    names both the offender and the valid set."""

    def _assert_named(self, err, offender="bogus"):
        msg = str(err.value)
        assert offender in msg
        assert "valid keywords" in msg

    def test_solve_rejects_unknown(self):
        with pytest.raises(ValueError) as err:
            solve(int_chain(n=10), bogus=1)
        self._assert_named(err)

    def test_execute_rejects_unknown(self):
        sys_ = int_chain(n=10)
        plan = solve(sys_).plan
        with pytest.raises(ValueError) as err:
            execute(plan, sys_, bogus=1)
        self._assert_named(err)

    def test_execute_rejects_plan_kwarg(self):
        # ``plan`` is positional in execute(); repeating it as a
        # keyword is a duplicate-argument TypeError, not a silent win.
        sys_ = int_chain(n=10)
        plan = solve(sys_).plan
        with pytest.raises(TypeError, match="plan"):
            execute(plan, sys_, plan=plan)

    def test_solve_batch_rejects_unknown(self):
        sys_ = int_chain(n=10)
        with pytest.raises(ValueError) as err:
            solve_batch(sys_, [sys_.initial], bogus=1)
        self._assert_named(err)

    def test_session_init_rejects_unknown(self):
        with pytest.raises(ValueError) as err:
            Session(int_chain(n=10), bogus=1)
        self._assert_named(err)

    def test_session_solve_rejects_unknown(self):
        session = Session(int_chain(n=10))
        with pytest.raises(ValueError) as err:
            session.solve(bogus=1)
        self._assert_named(err)

    def test_session_solve_batch_rejects_unknown(self):
        session = Session(int_chain(n=10), backend="numpy")
        with pytest.raises(ValueError) as err:
            session.solve_batch([list(range(11))], bogus=1)
        self._assert_named(err)

    def test_shared_knobs_accepted_everywhere(self):
        sys_ = int_chain(n=20, seed=14)
        policy = SolvePolicy(max_rounds=64, on_exhaustion="raise")
        oracle = run_ordinary(sys_)
        r1 = solve(sys_, backend="numpy", policy=policy, checked=True)
        assert r1.values == oracle
        r2 = execute(
            r1.plan, sys_, backend="numpy", policy=policy, checked=True
        )
        assert r2.values == oracle
        rows = solve_batch(
            sys_, [sys_.initial], backend="numpy", policy=policy, checked=True
        )
        assert rows[0] == oracle
        session = Session(
            sys_, backend="numpy", policy=policy, checked=True
        )
        assert session.solve().values == oracle
