"""End-to-end telemetry: shm worker snapshots fan into per-worker and
rolled-up master series, a worker fault produces a crash-report JSON
naming the failing round, and Sessions record serve latency."""

import json
import os

import numpy as np
import pytest

from repro import obs
from repro.core import ADD, OrdinaryIRSystem, run_ordinary
from repro.engine import Session, solve
from repro.errors import FaultError
from repro.obs.recorder import configure, get_recorder

WORKERS = int(os.environ.get("REPRO_SHM_TEST_WORKERS", "2"))


def int_chain(n=2000, seed=0):
    rng = np.random.default_rng(seed)
    return OrdinaryIRSystem.build(
        rng.integers(0, 100, size=n + 1).tolist(),
        np.arange(1, n + 1),
        np.arange(n),
        ADD,
    )


@pytest.fixture(autouse=True)
def _quiet_recorder():
    configure(dump_dir="")
    get_recorder().clear()
    yield
    configure(dump_dir="")
    get_recorder().clear()


class TestWorkerAggregation:
    def test_per_worker_and_merged_series(self):
        sys_ = int_chain()
        with obs.observed() as (_tracer, registry):
            res = solve(sys_, backend="shm", options={"workers": WORKERS})
        assert res.values == run_ordinary(sys_)

        # one barrier-wait histogram per worker...
        for rank in range(WORKERS):
            h = registry.get(
                "engine.shm.worker.barrier_wait_s", proc=f"worker-{rank}"
            )
            assert h is not None and h.count > 0, rank
            rounds = registry.get(
                "engine.shm.worker.rounds", proc=f"worker-{rank}"
            )
            assert rounds is not None and rounds.value > 0
        # ...plus the rolled-up series aggregating all of them
        rollup = registry.get("engine.shm.worker.barrier_wait_s")
        assert rollup is not None
        per_worker = sum(
            registry.get(
                "engine.shm.worker.barrier_wait_s", proc=f"worker-{r}"
            ).count
            for r in range(WORKERS)
        )
        assert rollup.count == per_worker
        assert rollup.percentile(0.5) is not None

    def test_no_worker_series_when_unobserved(self):
        sys_ = int_chain(seed=1)
        res = solve(sys_, backend="shm", options={"workers": WORKERS})
        assert res.values == run_ordinary(sys_)
        # nothing to assert on a registry -- none existed; just ensure
        # a subsequent observed solve still reports cleanly
        with obs.observed() as (_tracer, registry):
            solve(sys_, backend="shm", options={"workers": WORKERS})
        assert registry.get(
            "engine.shm.worker.rounds", proc="worker-0"
        ) is not None


class TestCrashReport:
    def test_worker_fault_dumps_failing_round(self, tmp_path):
        configure(dump_dir=str(tmp_path))
        sys_ = int_chain(seed=2)
        with pytest.raises(FaultError) as info:
            solve(
                sys_,
                backend="shm",
                failover=False,  # must see the raw worker fault
                options={
                    "workers": WORKERS,
                    "_test_crash": {"rank": 0, "round": 1, "once": False},
                },
            )
        exc = info.value
        assert exc.exit_code == 7
        assert exc.crash_report_path is not None
        with open(exc.crash_report_path, encoding="utf-8") as handle:
            report = json.load(handle)
        assert report["error"]["type"] in (
            "FaultError", "UnrecoverableFaultError"
        )
        assert report["error"]["exit_code"] == 7
        kinds = [e["kind"] for e in report["events"]]
        assert "solve.start" in kinds
        assert "worker.respawn" in kinds
        crashes = [e for e in report["events"] if e["kind"] == "shm.crash"]
        assert crashes, kinds
        # the failing round, reconstructed from the sibling workers'
        # aborted replies, lands in the crash event
        assert crashes[-1]["round"] == 1
        assert 0 in crashes[-1]["crashed"]

    def test_no_dump_without_crash_dir(self):
        sys_ = int_chain(seed=3)
        with pytest.raises(FaultError) as info:
            solve(
                sys_,
                backend="shm",
                failover=False,
                options={
                    "workers": WORKERS,
                    "_test_crash": {"rank": 0, "round": 0, "once": False},
                },
            )
        assert info.value.crash_report_path is None


class TestSessionLatency:
    def test_latency_histogram_per_serve(self):
        sys_ = int_chain(n=300, seed=4)
        with obs.observed() as (_tracer, registry):
            session = Session(sys_, backend="numpy")
            for _ in range(5):
                session.solve()
        h = registry.get(
            "engine.session.latency_s", backend="numpy", family="ordinary"
        )
        assert h is not None
        assert h.count == 5
        assert h.percentile(0.99) >= h.percentile(0.5) > 0

    def test_batch_counts_once_per_batch(self):
        sys_ = int_chain(n=200, seed=5)
        rows = [
            np.random.default_rng(i).integers(0, 9, size=201).tolist()
            for i in range(3)
        ]
        with obs.observed() as (_tracer, registry):
            session = Session(sys_, backend="numpy")
            session.solve_batch(rows)
        h = registry.get(
            "engine.session.latency_s", backend="numpy", family="ordinary"
        )
        assert h is not None and h.count == 1

    def test_no_histogram_when_unobserved(self):
        sys_ = int_chain(n=100, seed=6)
        session = Session(sys_, backend="numpy")
        out = session.solve()
        assert out.values == run_ordinary(sys_)
