"""CLI surface of the resilience layer: repro faults, solve policy
flags, and taxonomy exit codes."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.core import ADD, OrdinaryIRSystem
from repro.core.serialize import dump_system
from repro.resilience import FaultPlan


@pytest.fixture
def chain_json(tmp_path):
    n = 16
    system = OrdinaryIRSystem.build(
        initial=list(range(1, n + 2)),
        g=list(range(1, n + 1)),
        f=list(range(n)),
        op=ADD,
    )
    path = tmp_path / "chain.json"
    dump_system(system, str(path))
    return str(path)


class TestFaultsGen:
    def test_gen_to_stdout(self, capsys):
        assert main(["faults", "gen", "--seed", "3", "--count", "4"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == 1
        assert doc["seed"] == 3
        assert len(doc["events"]) == 4

    def test_gen_to_file_and_run(self, tmp_path, capsys):
        plan_path = str(tmp_path / "plan.json")
        assert main(
            ["faults", "gen", "--seed", "7", "--steps", "5", "--out", plan_path]
        ) == 0
        assert (
            main(
                [
                    "faults",
                    "run",
                    "--plan",
                    plan_path,
                    "--n",
                    "24",
                    "--json",
                ]
            )
            == 0
        )
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True
        assert report["matches_oracle"] is True
        assert report["faults_injected"] == 4
        assert report["faults_recovered"] == report["faults_detected"]

    def test_gen_bad_directory(self, capsys):
        assert (
            main(["faults", "gen", "--out", "/nonexistent/dir/plan.json"]) == 2
        )


class TestFaultsRun:
    def test_run_without_plan_uses_seed(self, capsys):
        assert main(["faults", "run", "--seed", "1", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "oracle match: yes" in out
        assert "injected=" in out

    def test_run_is_seed_deterministic(self, capsys):
        main(["faults", "run", "--seed", "5", "--n", "16", "--json"])
        first = json.loads(capsys.readouterr().out)
        main(["faults", "run", "--seed", "5", "--n", "16", "--json"])
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_unrecoverable_plan_exits_with_fault_code(self, tmp_path, capsys):
        doc = {
            "version": 1,
            "events": [
                {
                    "kind": "corrupt",
                    "step": 0,
                    "array": "A",
                    "index": 0,
                    "value": f"#F{a}",
                    "attempt": a,
                }
                for a in range(8)
            ],
        }
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(doc))
        # the doc parses into a persistent-corruption plan
        assert len(FaultPlan.from_json(json.dumps(doc)).events) == 8
        code = main(["faults", "run", "--plan", str(path), "--n", "8"])
        assert code == 7
        assert "fault" in capsys.readouterr().err


class TestSolvePolicyFlags:
    def test_policy_exhaustion_exit_code(self, chain_json, capsys):
        code = main(
            ["solve", chain_json, "--policy-rounds", "1"]
        )
        assert code == 4
        err = capsys.readouterr().err
        assert "policy" in err and "budget" in err

    def test_policy_fallback_succeeds(self, chain_json, capsys):
        code = main(
            [
                "solve",
                chain_json,
                "--policy-rounds",
                "1",
                "--on-exhaustion",
                "fallback",
                "--check",
            ]
        )
        assert code == 0
        assert "A[16] = 153" in capsys.readouterr().out

    def test_check_flag_passes_on_healthy_system(self, chain_json, capsys):
        assert main(["solve", chain_json, "--check"]) == 0

    def test_json_error_payload(self, chain_json, capsys):
        code = main(
            ["solve", chain_json, "--policy-rounds", "1", "--json"]
        )
        assert code == 4
        doc = json.loads(capsys.readouterr().out)
        assert doc["error"]["category"] == "policy"
        assert doc["error"]["type"] == "IterationBudgetExceeded"
