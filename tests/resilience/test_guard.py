"""NumericGuard: tolerance-aware singularity, health scans, and the
float -> exact -> sequential degradation ladder."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import obs
from repro.core.moebius import (
    AffineRecurrence,
    Mat2,
    RationalRecurrence,
    moebius_compose,
    run_moebius_sequential,
)
from repro.resilience import GuardReport, NumericGuard, default_guard
from .._legacy_solvers import solve_moebius, solve_rational_numpy

INF = float("inf")


def _counter(snapshot, name, **labels):
    for entry in snapshot:
        if entry["name"] == name and entry.get("labels", {}) == labels:
            return entry["value"]
    return 0


# ---------------------------------------------------------------------------
# singularity tests
# ---------------------------------------------------------------------------


def test_is_singular_exact_zero_always():
    guard = NumericGuard(det_rel_tol=0.0)
    assert guard.is_singular(0, 100)
    assert guard.is_singular(0.0, 100.0)
    assert not guard.is_singular(1e-30, 1.0)


def test_is_singular_tolerance_scales():
    guard = default_guard()
    # drift far below 64 ulp of the scale counts as zero ...
    assert guard.is_singular(1e-18, 1.0)
    # ... genuinely regular determinants do not
    assert not guard.is_singular(0.5, 1.0)
    assert not guard.is_singular(1e-18, 1e-18)


def test_is_singular_exact_types_never_tolerance():
    from fractions import Fraction

    guard = default_guard()
    tiny = Fraction(1, 10**30)
    assert not guard.is_singular(tiny, Fraction(1))
    assert guard.is_singular(Fraction(0), Fraction(1))


def test_mat_is_constant_drifting_rank1():
    # [[a, b], [s*a, s*b]] is mathematically rank 1, but float rounding
    # leaves det = a*(s*b) - b*(s*a) = -4.3e-19 != 0: the exact test the
    # object engine used misclassifies it as a non-constant map.
    a, b, s = 0.1, 0.3, 0.1
    mat = Mat2(a, b, s * a, s * b)
    assert mat.det() != 0.0
    assert not mat.is_constant_map()  # exact test: misclassified
    assert mat.is_constant_map(default_guard())  # guarded: correct


def test_guarded_compose_absorbs_garbage_inner():
    # The point of the constant-map test: a constant outer map must
    # absorb its inner segment.  With the exact test the drifting
    # rank-1 outer composes with a non-finite inner and produces
    # non-finite entries; the guard stops that.
    a, b, s = 0.1, 0.3, 0.1
    outer = Mat2(a, b, s * a, s * b)
    inner = Mat2(INF, 1.0, 0.0, 1.0)
    exact = moebius_compose(outer, inner)
    assert any(
        math.isinf(v) or math.isnan(v)
        for v in (exact.a, exact.b, exact.c, exact.d)
    )
    guarded = moebius_compose(outer, inner, default_guard())
    assert guarded == outer


def test_singular_mask_matches_scalar_test():
    guard = default_guard()
    a = np.array([0.1, 1.0, 2.0])
    b = np.array([0.3, 0.0, 3.0])
    c = np.array([0.1 * 0.1, 0.0, 4.0])
    d = np.array([0.1 * 0.3, 1.0, 6.0])
    mask = guard.singular_mask(a, b, c, d)
    expect = [
        guard.mat_is_constant(Mat2(a[i], b[i], c[i], d[i])) for i in range(3)
    ]
    assert mask.tolist() == expect
    assert mask.tolist() == [True, False, True]


def test_singular_mask_exact_mode():
    guard = NumericGuard(det_rel_tol=0.0)
    a, b, s = 0.1, 0.3, 0.1
    mask = guard.singular_mask(
        np.array([a]), np.array([b]), np.array([s * a]), np.array([s * b])
    )
    assert mask.tolist() == [False]


# ---------------------------------------------------------------------------
# satellite regression: drifting near-singular chain
# ---------------------------------------------------------------------------


def test_rational_chain_with_drifting_singular_matrices():
    """A chain of rank-1 (constant-map) matrices whose float dets drift
    off zero: the guarded rational engine must classify them as
    constant and agree with the sequential loop."""
    rows = [(0.1, 0.3, 0.1), (0.1, 0.3, 0.2), (0.1, 0.3, 0.7), (0.1, 0.3, 1.3)]
    n = 8
    A, B, C, D = [], [], [], []
    for i in range(n):
        a, b, s = rows[i % len(rows)]
        A.append(a)
        B.append(b)
        C.append(s * a)
        D.append(s * b)
    rec = RationalRecurrence.build(
        initial=[1.0] * (n + 1),
        g=list(range(1, n + 1)),
        f=list(range(n)),
        a=A,
        b=B,
        c=C,
        d=D,
    )
    # every matrix really drifted (the premise of the regression)
    assert all(A[i] * D[i] - B[i] * C[i] != 0.0 for i in range(n))
    oracle = run_moebius_sequential(rec)
    guarded, _ = solve_rational_numpy(rec, guard=default_guard())
    for got, want in zip(guarded, oracle):
        assert got == pytest.approx(want, rel=1e-9)
    # auto mode routes through the same guarded path
    auto, _ = solve_moebius(rec)
    for got, want in zip(auto, oracle):
        assert got == pytest.approx(want, rel=1e-9)


# ---------------------------------------------------------------------------
# health scans
# ---------------------------------------------------------------------------


def test_check_values_counts_and_fatality():
    guard = default_guard()
    report = guard.check_values([1.0, float("nan"), INF, 3], where="t")
    assert report.checked == 4
    assert report.nan_count == 1
    assert report.inf_count == 1
    assert report.bad_cells == [1]  # inf is not fatal by default
    assert not report.healthy

    tolerant = NumericGuard(nan_fatal=False)
    assert tolerant.check_values([float("nan")]).healthy

    strict = NumericGuard(inf_fatal=True)
    assert strict.check_values([INF]).bad_cells == [0]


def test_check_values_ignores_exact_types():
    from fractions import Fraction

    report = default_guard().check_values([Fraction(1, 3), 7, "x"])
    assert report.healthy
    assert report.nan_count == 0


def test_guard_report_to_dict():
    report = GuardReport(where="m", checked=3, nan_count=1, bad_cells=[2])
    doc = report.to_dict()
    assert doc["where"] == "m"
    assert doc["bad_cells"] == [2]
    assert "NaN" in report.describe()


# ---------------------------------------------------------------------------
# the degradation ladder (acceptance criterion)
# ---------------------------------------------------------------------------


def _nan_engineered_recurrence():
    """Affine chain whose float fast path manufactures NaN: composing
    two overflowed (inf, 0) segments multiplies 0 * inf."""
    n = 8
    return AffineRecurrence.build(
        initial=[1.0] + [0.0] * n,
        g=list(range(1, n + 1)),
        f=list(range(n)),
        a=[1e300] * n,
        b=[0.0] * n,
    )


def test_engineered_nan_escalates_to_correct_result():
    rec = _nan_engineered_recurrence()
    oracle = run_moebius_sequential(rec)

    # the raw float fast path really is sick (the premise)
    from .._legacy_solvers import solve_affine_numpy

    raw, _ = solve_affine_numpy(rec)
    assert any(isinstance(v, float) and math.isnan(v) for v in raw) or any(
        math.isnan(float(v)) for v in raw if isinstance(v, (float, np.floating))
    )

    # auto mode returns the correct (overflow-to-inf) result instead
    out, _ = solve_moebius(rec)
    assert list(map(float, out)) == list(map(float, oracle))
    assert math.isinf(float(out[-1]))


def test_escalation_is_visible_in_obs_metrics():
    rec = _nan_engineered_recurrence()
    with obs.observed() as (_tracer, registry):
        out, _ = solve_moebius(rec)
        snapshot = registry.snapshot()
    oracle = run_moebius_sequential(rec)
    assert list(map(float, out)) == list(map(float, oracle))
    assert (
        _counter(snapshot, "resilience.guard.trips", kind="nan", engine="affine")
        == 1
    )
    assert (
        _counter(
            snapshot, "resilience.escalations", source="affine", target="exact"
        )
        == 1
    )


def test_explicit_engine_stays_unguarded():
    # An explicitly selected engine must keep its raw float semantics:
    # no silent escalation behind the caller's back.
    rec = _nan_engineered_recurrence()
    out, _ = solve_moebius(rec, engine="affine")
    assert any(math.isnan(float(v)) for v in out)


def test_explicit_guard_object_on_explicit_engine():
    # ... but passing a concrete guard arms the ladder even for an
    # explicit engine choice.
    rec = _nan_engineered_recurrence()
    oracle = run_moebius_sequential(rec)
    out, _ = solve_moebius(rec, engine="affine", guard=default_guard())
    assert list(map(float, out)) == list(map(float, oracle))


def test_sequential_rung_when_exact_unavailable():
    # Non-finite *input* scalars make the Fraction rung impossible; the
    # ladder must fall through to the sequential baseline.
    n = 4
    rec = AffineRecurrence.build(
        initial=[1.0] * (n + 1),
        g=list(range(1, n + 1)),
        f=list(range(n)),
        a=[1e300, INF, 1e300, 1e300],
        b=[0.0] * n,
    )
    oracle = run_moebius_sequential(rec)
    with obs.observed() as (_tracer, registry):
        out, _ = solve_moebius(rec)
        snapshot = registry.snapshot()
    assert [float(v) for v in out] == [float(v) for v in oracle]
    sources = [
        e["labels"]
        for e in snapshot
        if e["name"] == "resilience.escalations"
    ]
    if sources:  # fast path may already agree; escalate only if it tripped
        assert all(lbl["target"] in ("exact", "sequential") for lbl in sources)
