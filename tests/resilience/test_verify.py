"""Differential verification (checked= solves and the oracle helpers)."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import (
    CONCAT,
    GIRSystem,
    OrdinaryIRSystem,
    modular_add,
)
from repro.core.moebius import AffineRecurrence
from repro.errors import VerificationError
from repro.resilience import SolvePolicy, check_against_oracle, differential_check
from .._legacy_solvers import solve_gir, solve_moebius, solve_ordinary, solve_ordinary_numpy


def _chain(n: int) -> OrdinaryIRSystem:
    return OrdinaryIRSystem.build(
        [(f"s{j}",) for j in range(n + 1)],
        list(range(1, n + 1)),
        list(range(n)),
        CONCAT,
    )


def test_check_against_oracle_pass_and_fail():
    check_against_oracle([1, 2, 3], [1, 2, 3], sample=None)
    with pytest.raises(VerificationError) as info:
        check_against_oracle([1, 9, 3], [1, 2, 3], sample=None)
    assert info.value.mismatches == [(1, 9, 2)]
    with pytest.raises(VerificationError):
        check_against_oracle([1, 2], [1, 2, 3])


def test_check_against_oracle_float_semantics():
    nan = float("nan")
    # NaN agrees with NaN; tiny relative drift is fine; gross error is not.
    check_against_oracle([nan, 1.0 + 1e-12], [nan, 1.0], sample=None)
    with pytest.raises(VerificationError):
        check_against_oracle([1.1], [1.0], sample=None)


def test_check_sampling_is_seeded():
    n = 1000
    result = list(range(n))
    result[500] = -1
    # sample that misses the bad cell passes; the full check fails
    try:
        check_against_oracle(result, list(range(n)), sample=8, seed=0)
        missed = True
    except VerificationError:
        missed = False
    with pytest.raises(VerificationError):
        check_against_oracle(result, list(range(n)), sample=None)
    # either way, repeated sampled runs behave identically (seeded)
    for _ in range(3):
        try:
            check_against_oracle(result, list(range(n)), sample=8, seed=0)
            again = True
        except VerificationError:
            again = False
        assert again == missed


def test_differential_check_kinds():
    system = _chain(8)
    out, _ = solve_ordinary(system)
    differential_check("ordinary", system, out)
    with pytest.raises(ValueError):
        differential_check("quantum", system, out)


def test_checked_solves_pass_end_to_end():
    system = _chain(12)
    solve_ordinary(system, checked=True)
    solve_ordinary_numpy(system, checked=True)

    gir = GIRSystem.build(
        [2, 3, 1, 1, 1],
        [2, 3, 4],
        [1, 2, 3],
        [0, 1, 2],
        modular_add(97),
    )
    solve_gir(gir, checked=True)
    solve_gir(gir, checked=True, allow_ordinary_dispatch=False)

    n = 6
    rec = AffineRecurrence.build(
        initial=[1.0] * (n + 1),
        g=list(range(1, n + 1)),
        f=list(range(n)),
        a=[1.5] * n,
        b=[0.25] * n,
    )
    solve_moebius(rec, checked=True)


def test_checked_fallback_result_still_verifies():
    system = _chain(32)
    out, _ = solve_ordinary_numpy(
        system,
        policy=SolvePolicy(max_rounds=1, on_exhaustion="fallback"),
        checked=True,
    )
    assert out[-1] == tuple(f"s{j}" for j in range(33))


def test_checked_partial_result_skips_verification():
    # A policy-truncated partial result is *expected* to differ from
    # the oracle; checked= must not turn an explicitly requested
    # partial answer into an error.
    system = _chain(32)
    out, _ = solve_ordinary_numpy(
        system,
        policy=SolvePolicy(max_rounds=1, on_exhaustion="partial"),
        checked=True,
    )
    assert out != [None]  # returned, did not raise


def test_verify_outcome_counted_in_obs():
    system = _chain(8)
    with obs.observed() as (_tracer, registry):
        solve_ordinary_numpy(system, checked=True)
        entries = [
            e
            for e in registry.snapshot()
            if e["name"] == "resilience.verify.checks"
        ]
    assert entries
    assert entries[0]["labels"]["outcome"] == "pass"


def test_checked_ordinary_with_f_initial():
    # f_initial changes what terminals read; the checked oracle must
    # honour it (a plain sequential re-run would flag a false mismatch).
    from repro.core.operators import make_operator

    op = make_operator("second", lambda x, y: (x, y), commutative=False)
    system = OrdinaryIRSystem.build(
        ["a", "b", "c"],
        [1, 2],
        [0, 1],
        op,
    )
    f_init = ["A", "B", "C"]
    out, _ = solve_ordinary(system, f_initial=f_init, checked=True)
    assert out[1] == ("A", "b")
