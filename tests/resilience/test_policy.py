"""SolvePolicy enforcement across the solver loops."""

from __future__ import annotations

import pytest

from repro import obs
from repro.core import (
    CONCAT,
    GIRSystem,
    OrdinaryIRSystem,
    build_dependence_graph,
    count_all_paths,
    count_paths_dp,
    modular_add,
    run_gir,
    run_ordinary,
)
from repro.core.moebius import AffineRecurrence, run_moebius_sequential
from repro.errors import IterationBudgetExceeded, PolicyError, SolveTimeoutError
from repro.resilience import SolvePolicy
from .._legacy_solvers import solve_gir, solve_moebius, solve_ordinary, solve_ordinary_numpy


def _chain(n: int) -> OrdinaryIRSystem:
    return OrdinaryIRSystem.build(
        [(f"s{j}",) for j in range(n + 1)],
        list(range(1, n + 1)),
        list(range(n)),
        CONCAT,
    )


def test_policy_validation():
    with pytest.raises(ValueError):
        SolvePolicy(on_exhaustion="explode")
    with pytest.raises(ValueError):
        SolvePolicy(max_rounds=-1)
    with pytest.raises(ValueError):
        SolvePolicy(timeout_s=-0.1)
    assert SolvePolicy().unbounded
    assert not SolvePolicy(max_rounds=3).unbounded


def test_enforcer_round_budget():
    enforcer = SolvePolicy(max_rounds=2, on_exhaustion="partial").enforcer("t")
    assert enforcer.admit()
    assert enforcer.admit()
    assert not enforcer.admit()
    assert enforcer.exhausted == "rounds"
    assert enforcer.is_partial and not enforcer.should_fallback


def test_enforcer_raise_is_default():
    enforcer = SolvePolicy(max_rounds=0).enforcer("t")
    with pytest.raises(IterationBudgetExceeded) as info:
        enforcer.admit()
    assert info.value.budget == 0
    assert isinstance(info.value, PolicyError)


def test_enforcer_timeout():
    enforcer = SolvePolicy(timeout_s=0.0).enforcer("t")
    import time

    time.sleep(0.002)
    with pytest.raises(SolveTimeoutError):
        enforcer.admit()


# -- ordinary ---------------------------------------------------------------


@pytest.mark.parametrize("solver", [solve_ordinary, solve_ordinary_numpy])
def test_ordinary_policy_raise(solver):
    system = _chain(32)  # needs ~5 rounds
    with pytest.raises(IterationBudgetExceeded):
        solver(system, policy=SolvePolicy(max_rounds=1))


@pytest.mark.parametrize("solver", [solve_ordinary, solve_ordinary_numpy])
def test_ordinary_policy_fallback_is_exact(solver):
    system = _chain(32)
    out, _ = solver(
        system, policy=SolvePolicy(max_rounds=1, on_exhaustion="fallback")
    )
    assert out == run_ordinary(system)


@pytest.mark.parametrize("solver", [solve_ordinary, solve_ordinary_numpy])
def test_ordinary_policy_partial_differs(solver):
    system = _chain(32)
    out, _ = solver(
        system, policy=SolvePolicy(max_rounds=1, on_exhaustion="partial")
    )
    assert out != run_ordinary(system)  # genuinely partial


@pytest.mark.parametrize("solver", [solve_ordinary, solve_ordinary_numpy])
def test_ordinary_generous_policy_is_transparent(solver):
    system = _chain(16)
    out, _ = solver(system, policy=SolvePolicy(max_rounds=100))
    assert out == run_ordinary(system)


def test_policy_exhaustion_counted_in_obs():
    system = _chain(32)
    with obs.observed() as (_tracer, registry):
        solve_ordinary_numpy(
            system, policy=SolvePolicy(max_rounds=1, on_exhaustion="fallback")
        )
        entries = [
            e
            for e in registry.snapshot()
            if e["name"] == "resilience.policy.exhausted"
        ]
    assert entries
    assert entries[0]["labels"] == {
        "label": "ordinary.numpy",
        "reason": "rounds",
    }


# -- cap / gir --------------------------------------------------------------


def _fib_gir(n: int) -> GIRSystem:
    return GIRSystem.build(
        [2, 3] + [1] * n,
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        modular_add(97),
    )


def test_cap_policy_fallback_matches_dp():
    graph = build_dependence_graph(_fib_gir(12))
    bounded = count_all_paths(
        graph, policy=SolvePolicy(max_rounds=1, on_exhaustion="fallback")
    )
    assert bounded.powers == count_paths_dp(graph)


def test_cap_policy_raise():
    graph = build_dependence_graph(_fib_gir(12))
    with pytest.raises(IterationBudgetExceeded):
        count_all_paths(graph, policy=SolvePolicy(max_rounds=1))


def test_gir_policy_threads_to_cap():
    system = _fib_gir(10)
    with pytest.raises(IterationBudgetExceeded):
        solve_gir(
            system,
            policy=SolvePolicy(max_rounds=1),
            allow_ordinary_dispatch=False,
        )
    out, _ = solve_gir(
        system,
        policy=SolvePolicy(max_rounds=1, on_exhaustion="fallback"),
        allow_ordinary_dispatch=False,
    )
    assert out == run_gir(system)


# -- moebius ----------------------------------------------------------------


def test_moebius_policy_fallback():
    n = 40
    rec = AffineRecurrence.build(
        initial=[1.0] * (n + 1),
        g=list(range(1, n + 1)),
        f=list(range(n)),
        a=[1.01] * n,
        b=[0.25] * n,
    )
    out, _ = solve_moebius(
        rec, policy=SolvePolicy(max_rounds=1, on_exhaustion="fallback")
    )
    oracle = run_moebius_sequential(rec)
    for got, want in zip(out, oracle):
        assert float(got) == pytest.approx(float(want), rel=1e-9)


def test_moebius_policy_raise():
    n = 40
    rec = AffineRecurrence.build(
        initial=[1.0] * (n + 1),
        g=list(range(1, n + 1)),
        f=list(range(n)),
        a=[1.01] * n,
        b=[0.25] * n,
    )
    with pytest.raises(IterationBudgetExceeded):
        solve_moebius(rec, policy=SolvePolicy(max_rounds=1))
