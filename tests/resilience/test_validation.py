"""Eager index-map validation and dependence-cycle detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CONCAT,
    GIRSystem,
    OrdinaryIRSystem,
    build_dependence_graph,
    modular_add,
)
from repro.core.depgraph import DependenceGraph
from repro.core.equations import as_index_array
from repro.core.traces import ordinary_trace_factors
from repro.errors import CyclicDependenceError, IRValidationError


# ---------------------------------------------------------------------------
# eager domain validation (satellite)
# ---------------------------------------------------------------------------


def test_as_index_array_names_bad_iteration():
    with pytest.raises(IRValidationError) as info:
        as_index_array([0, 1, 7, 2], 4, name="g", m=4)
    message = str(info.value)
    assert "g" in message
    assert "iteration 2" in message
    assert "cell 7" in message
    assert "[0, 4)" in message


def test_as_index_array_negative_index():
    with pytest.raises(IRValidationError) as info:
        as_index_array([0, -3], 2, name="f", m=5)
    assert "iteration 1" in str(info.value)
    assert "cell -3" in str(info.value)


def test_as_index_array_without_m_skips_domain_check():
    arr = as_index_array([0, 99], 2, name="g")
    assert arr.tolist() == [0, 99]


def test_ordinary_build_validates_eagerly():
    # the bad map must be rejected at build time, before any solver runs
    with pytest.raises(IRValidationError) as info:
        OrdinaryIRSystem.build(
            [("s",)] * 3,
            [1, 5],
            [0, 1],
            CONCAT,
        )
    assert "iteration 1" in str(info.value)
    # and old callers catching ValueError still work
    with pytest.raises(ValueError):
        OrdinaryIRSystem.build([("s",)] * 3, [1, 5], [0, 1], CONCAT)


def test_gir_build_validates_all_three_maps():
    for maps in (
        dict(g=[9, 2], f=[0, 1], h=[0, 1]),
        dict(g=[1, 2], f=[9, 1], h=[0, 1]),
        dict(g=[1, 2], f=[0, 1], h=[0, 9]),
    ):
        with pytest.raises(IRValidationError):
            GIRSystem.build([1] * 4, maps["g"], maps["f"], maps["h"], modular_add(97))


def test_duplicate_g_names_both_iterations():
    with pytest.raises(IRValidationError) as info:
        OrdinaryIRSystem.build(
            [("s",)] * 4,
            [1, 2, 1],
            [0, 0, 0],
            CONCAT,
        )
    message = str(info.value)
    assert "cell 1" in message
    assert "iterations 0 and 2" in message


# ---------------------------------------------------------------------------
# cycle detection
# ---------------------------------------------------------------------------


def _graph_with_cycle() -> DependenceGraph:
    # 0 -> 1 -> 2 -> 0 among final nodes (hand-built; build_dependence_graph
    # cannot produce this, which is exactly why find_cycle exists)
    return DependenceGraph(
        n=3,
        m=3,
        target_f=np.array([1, 2, 0]),
        target_h=np.array([1, 2, 0]),
    )


def test_find_cycle_reports_cycle_nodes():
    graph = _graph_with_cycle()
    cycle = graph.find_cycle()
    assert cycle
    assert sorted(cycle) == [0, 1, 2]


def test_find_cycle_none_on_dag():
    system = GIRSystem.build(
        [2, 3, 1, 1],
        [2, 3],
        [0, 1],
        [1, 2],
        modular_add(97),
    )
    graph = build_dependence_graph(system)
    assert graph.find_cycle() == []
    graph.validate_acyclic()  # no raise


def test_validate_acyclic_raises_with_path():
    graph = _graph_with_cycle()
    with pytest.raises(CyclicDependenceError) as info:
        graph.validate_acyclic()
    assert info.value.cycle
    assert "->" in str(info.value)


def test_self_loop_cycle():
    graph = DependenceGraph(
        n=1, m=1, target_f=np.array([0]), target_h=np.array([1])
    )
    assert graph.find_cycle() == [0]
    with pytest.raises(CyclicDependenceError):
        graph.validate_acyclic()


def test_cap_rejects_cyclic_graph():
    from repro.core import count_all_paths

    with pytest.raises(CyclicDependenceError):
        count_all_paths(_graph_with_cycle())


def test_ordinary_traces_detect_pointer_cycle():
    # A hand-supplied (corrupted) predecessor array with a cycle must
    # be detected by the chain-length bound instead of hanging.
    system = OrdinaryIRSystem.build(
        [("s",)] * 3,
        [1, 2],
        [0, 1],
        CONCAT,
    )
    looping_pred = np.array([1, 0])  # 0 -> 1 -> 0 -> ...
    with pytest.raises(CyclicDependenceError) as info:
        ordinary_trace_factors(system, 0, pred=looping_pred)
    assert info.value.cycle
