"""The chaos harness: plan schema, determinism, and live injection.

Schema tests mirror the FaultPlan suite (version-2 chaos plans must
round-trip and reject foreign documents); injection tests run each
fault kind against the REAL shm pool at small ``n`` and assert the
recovery path the kind is designed to exercise.  The large-``n`` sweep
lives in ``benchmarks/chaos_smoke.py``.
"""

import os

import pytest

from repro.chaos import (
    CHAOS_KINDS,
    DEFAULT_HANG_S,
    DEFAULT_SLOW_S,
    ChaosEvent,
    ChaosPlan,
    run_chaos,
)
from repro.errors import FaultError
from repro.resilience import FaultPlan

WORKERS = int(os.environ.get("REPRO_SHM_TEST_WORKERS", "2"))


class TestChaosEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(FaultError, match="unknown chaos kind"):
            ChaosEvent(kind="meteor", round=0)

    def test_rejects_negative_coordinates(self):
        with pytest.raises(FaultError):
            ChaosEvent(kind="kill", round=-1)
        with pytest.raises(FaultError):
            ChaosEvent(kind="kill", round=0, attempt=-1)

    def test_hang_and_slow_default_their_delays(self):
        assert ChaosEvent(kind="hang", round=0).delay_s == DEFAULT_HANG_S
        assert ChaosEvent(kind="slow", round=0).delay_s == DEFAULT_SLOW_S
        assert ChaosEvent(kind="kill", round=0).delay_s == 0.0

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(FaultError, match="unknown chaos-event fields"):
            ChaosEvent.from_dict({"kind": "kill", "round": 0, "blast": 9})


class TestChaosPlanSchema:
    def test_json_round_trip(self, tmp_path):
        plan = ChaosPlan.random(7, rounds=5, count=6)
        path = tmp_path / "plan.json"
        plan.to_json(str(path))
        back = ChaosPlan.from_json(str(path))
        assert back.to_dict() == plan.to_dict()
        assert back.seed == 7

    def test_same_seed_same_plan(self):
        a = ChaosPlan.random(42, rounds=4, count=8)
        b = ChaosPlan.random(42, rounds=4, count=8)
        assert a.to_dict() == b.to_dict()
        assert a.to_dict() != ChaosPlan.random(43, rounds=4, count=8).to_dict()

    def test_cycles_all_kinds(self):
        plan = ChaosPlan.random(1, rounds=3, count=4)
        assert {e.kind for e in plan.events} == set(CHAOS_KINDS)

    def test_rejects_version_1_fault_plans(self):
        fault_doc = FaultPlan.random(3, steps=4, count=2).to_dict()
        with pytest.raises(FaultError, match="not a chaos plan"):
            ChaosPlan.from_dict(fault_doc)

    def test_fault_plan_rejects_chaos_documents(self):
        chaos_doc = ChaosPlan.random(3, rounds=4, count=2).to_dict()
        with pytest.raises(Exception):
            FaultPlan.from_dict(chaos_doc)

    def test_resolve_pins_open_ranks_deterministically(self):
        plan = ChaosPlan.random(11, rounds=4, count=6)
        first = plan.resolve(4)
        second = plan.resolve(4)
        assert first == second
        assert all(0 <= e["rank"] < 4 for e in first["events"])
        # a different width resolves (deterministically) too
        assert all(0 <= e["rank"] < 2 for e in plan.resolve(2)["events"])

    def test_resolve_skips_out_of_range_pinned_ranks(self):
        plan = ChaosPlan.single("kill", round=1, rank=7)
        assert plan.resolve(2)["events"] == []


class TestLiveInjection:
    """Each kind end-to-end at small n; the gate runs these at >=100k."""

    def test_kill_recovers_by_respawn(self):
        report = run_chaos(
            ChaosPlan.single("kill", round=1, rank=0),
            n=3_000, workers=WORKERS, watchdog_s=5.0,
        )
        assert report["ok"], report["error"]
        assert report["backend"] == "shm"
        assert report["respawns"] >= 1

    def test_slow_is_absorbed_without_recovery_action(self):
        report = run_chaos(
            ChaosPlan.single("slow", round=1, rank=0, delay_s=0.05),
            n=3_000, workers=WORKERS, watchdog_s=5.0,
        )
        assert report["ok"], report["error"]
        assert report["backend"] == "shm"
        assert report["respawns"] == 0  # the false-positive guard
        assert report["hang_kills"] == 0

    def test_corrupt_is_caught_and_failed_over(self):
        report = run_chaos(
            ChaosPlan.single("corrupt", round=1, rank=0),
            n=3_000, workers=WORKERS, watchdog_s=5.0,
        )
        assert report["ok"], report["error"]
        assert report["backend"] == "numpy"
        assert report["failover_from"] == "shm"
        assert report["reroutes"] >= 1

    def test_persistent_kill_exhausts_retries_then_fails_over(self):
        report = run_chaos(
            ChaosPlan.single("kill", round=1, rank=0, attempts=(0, 1)),
            n=3_000, workers=WORKERS, watchdog_s=5.0, retries=1,
        )
        assert report["ok"], report["error"]
        assert report["backend"] == "numpy"
        assert report["failover_from"] == "shm"

    def test_corrupt_without_failover_raises(self):
        report = run_chaos(
            ChaosPlan.single("corrupt", round=1, rank=0),
            n=3_000, workers=WORKERS, watchdog_s=5.0, failover=False,
        )
        assert not report["ok"]
        assert "VerificationError" in report["error"]
