"""Property-based resilience suite (hypothesis).

Random IR systems -- including adversarial cyclic and out-of-range
index maps -- must either solve to the sequential oracle or fail
through the structured error taxonomy; policies must bound work; fault
recovery must be deterministic under a fixed seed.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CONCAT,
    GIRSystem,
    OrdinaryIRSystem,
    modular_add,
    run_gir,
    run_ordinary,
)
from repro.core.depgraph import DependenceGraph
from repro.errors import (
    CyclicDependenceError,
    IRValidationError,
    IterationBudgetExceeded,
    ReproError,
)
from repro.pram import run_ordinary_on_pram
from repro.resilience import FaultPlan, SolvePolicy

from ..conftest import gir_systems, ordinary_systems
from .._legacy_solvers import solve_gir, solve_ordinary, solve_ordinary_numpy


# ---------------------------------------------------------------------------
# parallel == sequential, with and without checking
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(system=ordinary_systems())
def test_checked_ordinary_never_raises_on_valid_systems(system):
    out, _ = solve_ordinary(system, checked=True, check_sample=None)
    assert out == run_ordinary(system)
    out_np, _ = solve_ordinary_numpy(system, checked=True, check_sample=None)
    assert out_np == run_ordinary(system)


@settings(max_examples=25, deadline=None)
@given(system=gir_systems(distinct_g=False))
def test_checked_gir_never_raises_on_valid_systems(system):
    out, _ = solve_gir(system, checked=True, check_sample=None)
    assert out == run_gir(system)


@settings(max_examples=25, deadline=None)
@given(system=ordinary_systems(), rounds=st.integers(min_value=0, max_value=6))
def test_policy_bounded_termination(system, rounds):
    """Any round budget either completes within budget or exhausts
    cleanly -- and fallback always recovers the exact answer."""
    policy = SolvePolicy(max_rounds=rounds, on_exhaustion="fallback")
    out, _ = solve_ordinary_numpy(system, policy=policy)
    assert out == run_ordinary(system)
    strict = SolvePolicy(max_rounds=rounds)
    try:
        out2, _ = solve_ordinary_numpy(system, policy=strict)
        assert out2 == run_ordinary(system)
    except IterationBudgetExceeded:
        pass  # acceptable: budget genuinely too small


# ---------------------------------------------------------------------------
# adversarial inputs fail through the taxonomy
# ---------------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=8),
    bad_iteration=st.integers(min_value=0, max_value=7),
    offset=st.integers(min_value=1, max_value=100),
    which=st.sampled_from(["g", "f"]),
    sign=st.sampled_from([1, -1]),
)
def test_out_of_range_maps_raise_validation_error(
    n, bad_iteration, offset, which, sign
):
    bad_iteration %= n
    m = n + 1
    g = list(range(1, n + 1))
    f = list(range(n))
    bad_value = m + offset - 1 if sign > 0 else -offset
    (g if which == "g" else f)[bad_iteration] = bad_value
    with pytest.raises(IRValidationError) as info:
        OrdinaryIRSystem.build([("s",)] * m, g, f, CONCAT)
    assert f"iteration {bad_iteration}" in str(info.value)
    assert isinstance(info.value, ReproError)


@settings(max_examples=30, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    data=st.data(),
)
def test_random_cyclic_graphs_are_rejected(n, data):
    """Random functional graphs with every node pointing at another
    final node always contain a cycle; CAP must reject them."""
    targets = [
        data.draw(st.integers(min_value=0, max_value=n - 1)) for _ in range(n)
    ]
    graph = DependenceGraph(
        n=n,
        m=n,
        target_f=np.array(targets),
        target_h=np.array(targets),
    )
    cycle = graph.find_cycle()
    assert cycle  # pigeonhole: a total function on finite nodes cycles
    assert all(0 <= v < n for v in cycle)
    from repro.core import count_all_paths

    with pytest.raises(CyclicDependenceError):
        count_all_paths(graph)


# ---------------------------------------------------------------------------
# fault-recovery determinism
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**20),
    n=st.integers(min_value=2, max_value=16),
    count=st.integers(min_value=1, max_value=5),
)
def test_fault_recovery_is_deterministic_and_exact(seed, n, count):
    from repro.core import ADD

    system = OrdinaryIRSystem.build(
        initial=list(range(1, n + 2)),
        g=list(range(1, n + 1)),
        f=list(range(n)),
        op=ADD,
    )
    oracle = run_ordinary(system)

    def run():
        plan = FaultPlan.random(seed, steps=4, count=count)
        out, metrics = run_ordinary_on_pram(
            system, processors=3, fault_plan=plan
        )
        return out, metrics.faults_injected, metrics.faults_detected

    out_a, inj_a, det_a = run()
    out_b, inj_b, det_b = run()
    assert out_a == out_b == oracle
    assert (inj_a, det_a) == (inj_b, det_b)
