"""The structured failure taxonomy (repro.errors)."""

from __future__ import annotations

import pytest

from repro.errors import (
    CyclicDependenceError,
    FaultError,
    IRValidationError,
    IterationBudgetExceeded,
    NumericHealthError,
    PolicyError,
    ReproError,
    SolveTimeoutError,
    UnrecoverableFaultError,
    VerificationError,
    exit_code_for,
)


def test_hierarchy_preserves_builtin_contracts():
    # IRValidationError used to be a plain ValueError subclass in
    # repro.core.equations; old callers catching ValueError must keep
    # working.
    assert issubclass(IRValidationError, ValueError)
    assert issubclass(IRValidationError, ReproError)
    assert issubclass(CyclicDependenceError, IRValidationError)
    assert issubclass(NumericHealthError, ArithmeticError)
    assert issubclass(IterationBudgetExceeded, PolicyError)
    assert issubclass(SolveTimeoutError, PolicyError)
    assert issubclass(UnrecoverableFaultError, FaultError)
    assert issubclass(VerificationError, ReproError)


def test_exit_codes_are_distinct_and_reserved():
    codes = {
        ReproError: 1,
        IRValidationError: 3,
        CyclicDependenceError: 3,
        PolicyError: 4,
        NumericHealthError: 5,
        VerificationError: 6,
        FaultError: 7,
    }
    for cls, code in codes.items():
        assert cls.exit_code == code, cls
        assert exit_code_for(cls("boom")) == code
    # 2 is reserved for argparse usage errors; no class may claim it.
    assert 2 not in {cls.exit_code for cls in codes}


def test_exit_code_for_foreign_exception():
    assert exit_code_for(RuntimeError("x")) == 1


def test_diagnosis_payloads():
    exc = CyclicDependenceError("loop", cycle=[3, 5, 3])
    doc = exc.diagnosis()
    assert doc["category"] == "validation"
    assert doc["type"] == "CyclicDependenceError"
    assert doc["cycle"] == [3, 5, 3]

    budget = IterationBudgetExceeded("over", rounds=9, budget=8)
    assert budget.diagnosis()["rounds"] == 9
    assert budget.diagnosis()["budget"] == 8

    verify = VerificationError("bad", mismatches=[(2, 1.0, 3.0)])
    assert verify.diagnosis()["mismatches"] == [
        {"cell": 2, "got": "1.0", "want": "3.0"}
    ]

    fault = UnrecoverableFaultError("gone", step=4, attempts=5)
    assert fault.diagnosis()["step"] == 4
    assert fault.diagnosis()["attempts"] == 5


def test_category_strings():
    assert PolicyError("x").category == "policy"
    assert NumericHealthError("x").category == "numeric"
    assert VerificationError("x").category == "verification"
    assert FaultError("x").category == "fault"


def test_numeric_health_report_attachment():
    class Report:
        def to_dict(self):
            return {"nan_count": 2}

    exc = NumericHealthError("nan", report=Report())
    assert exc.diagnosis()["report"] == {"nan_count": 2}

    with pytest.raises(ArithmeticError):
        raise NumericHealthError("nan")
