"""Fault plans, PRAM injection, and checkpoint/DMR recovery."""

from __future__ import annotations

import json

import pytest

from repro.core import ADD, GIRSystem, OrdinaryIRSystem, modular_mul, run_gir, run_ordinary
from repro.errors import FaultError, UnrecoverableFaultError
from repro.pram import (
    PRAM,
    AccessPolicy,
    run_gir_on_pram,
    run_ordinary_on_pram,
    run_sequential_on_pram,
)
from repro.resilience import FAULT_KINDS, FaultEvent, FaultPlan


def _chain(n: int) -> OrdinaryIRSystem:
    return OrdinaryIRSystem.build(
        initial=list(range(1, n + 2)),
        g=list(range(1, n + 1)),
        f=list(range(n)),
        op=ADD,
    )


# ---------------------------------------------------------------------------
# plan model + serialization
# ---------------------------------------------------------------------------


def test_event_validation():
    with pytest.raises(FaultError):
        FaultEvent(kind="meltdown", step=0)
    with pytest.raises(FaultError):
        FaultEvent(kind="drop", step=-1)
    with pytest.raises(FaultError):
        FaultEvent(kind="delay", step=0)  # delay needs a positive delay
    with pytest.raises(FaultError):
        FaultEvent(kind="drop", step=0, attempt=-1)


def test_event_dict_round_trip_is_minimal():
    event = FaultEvent(kind="corrupt", step=3, array="A", index=2)
    doc = event.to_dict()
    assert doc == {"kind": "corrupt", "step": 3, "array": "A", "index": 2}
    assert FaultEvent.from_dict(doc) == event
    with pytest.raises(FaultError):
        FaultEvent.from_dict({"kind": "drop", "step": 0, "blast_radius": 9})


def test_plan_json_round_trip(tmp_path):
    plan = FaultPlan.random(99, steps=7, count=5)
    path = tmp_path / "plan.json"
    plan.to_json(str(path))
    loaded = FaultPlan.from_json(str(path))
    assert loaded.events == plan.events
    assert loaded.seed == plan.seed
    # and from a raw JSON string
    again = FaultPlan.from_json(plan.to_json())
    assert again.events == plan.events


def test_plan_json_rejects_garbage():
    with pytest.raises(FaultError):
        FaultPlan.from_json('{"version": 2, "events": []}')
    with pytest.raises(FaultError):
        FaultPlan.from_json("{not json")


def test_random_plan_covers_all_kinds_and_is_deterministic():
    plan_a = FaultPlan.random(5, steps=6, count=4)
    plan_b = FaultPlan.random(5, steps=6, count=4)
    assert plan_a.events == plan_b.events
    assert {e.kind for e in plan_a.events} == set(FAULT_KINDS)
    with pytest.raises(FaultError):
        FaultPlan.random(5, steps=0)
    with pytest.raises(FaultError):
        FaultPlan.random(5, steps=3, kinds=("drop", "meteor"))


# ---------------------------------------------------------------------------
# acceptance: seeded multi-kind run detects + recovers everything
# ---------------------------------------------------------------------------


def test_all_four_kinds_detected_recovered_oracle_exact():
    """The PR's acceptance run: one fault of every kind injected into a
    parallel OrdinaryIR run; all detected, all recovered, final array
    exactly equal to the sequential oracle, accounting clean."""
    system = _chain(12)
    oracle = run_ordinary(system)
    _clean_out, clean_metrics = run_ordinary_on_pram(system, processors=4)

    plan = FaultPlan(
        events=[
            FaultEvent(kind="drop", step=1),
            FaultEvent(kind="duplicate", step=2),
            FaultEvent(kind="corrupt", step=3, array="A"),
            FaultEvent(kind="delay", step=4, delay=17),
        ],
        seed=42,
    )
    out, metrics = run_ordinary_on_pram(system, processors=4, fault_plan=plan)

    assert out == oracle  # exact, not approximate
    assert metrics.faults_injected == 4
    assert len(plan.injected) == 4
    # one divergence detected per faulted superstep, all repaired
    faulted_steps = {e.step for e in plan.events}
    assert metrics.faults_detected == len(faulted_steps) == 4
    assert metrics.faults_recovered == metrics.faults_detected
    assert metrics.fault_retries >= 4
    # the accepted accounting equals the fault-free run's
    assert metrics.time == clean_metrics.time
    assert metrics.work == clean_metrics.work
    assert metrics.supersteps == clean_metrics.supersteps


def test_seeded_recovery_is_deterministic():
    system = _chain(16)
    oracle = run_ordinary(system)

    def run():
        plan = FaultPlan.random(7, steps=5, count=4)
        out, metrics = run_ordinary_on_pram(
            system, processors=4, fault_plan=plan
        )
        return out, metrics.faults_injected, metrics.fault_retries, plan.injected

    out_a, inj_a, retries_a, log_a = run()
    out_b, inj_b, retries_b, log_b = run()
    assert out_a == out_b == oracle
    assert (inj_a, retries_a) == (inj_b, retries_b)
    assert log_a == log_b


def test_clean_plan_costs_only_dmr():
    # A plan with no events still runs every step twice (DMR) but
    # reports no faults and converges with zero retries.
    system = _chain(8)
    out, metrics = run_ordinary_on_pram(
        system, processors=2, fault_plan=FaultPlan()
    )
    assert out == run_ordinary(system)
    assert metrics.faults_injected == 0
    assert metrics.faults_detected == 0
    assert metrics.fault_retries == 0


def test_unrecoverable_persistent_fault():
    # A corruption that fires on every attempt with attempt-varying
    # payloads never lets two executions agree.
    system = _chain(8)
    plan = FaultPlan(
        events=[
            FaultEvent(
                kind="corrupt",
                step=0,
                array="A",
                index=0,
                value=[f"#F{a}"],
                attempt=a,
            )
            for a in range(8)
        ]
    )
    with pytest.raises(UnrecoverableFaultError) as info:
        run_ordinary_on_pram(system, processors=2, fault_plan=plan)
    assert info.value.step == 0
    assert info.value.attempts == 5  # max_retries=3 -> 5 attempts
    assert info.value.exit_code == 7


def test_max_retries_extends_recovery():
    # The same persistent fault becomes recoverable once the retry
    # budget outlasts its last faulted attempt.
    system = _chain(8)

    def plan(upto: int) -> FaultPlan:
        return FaultPlan(
            events=[
                FaultEvent(
                    kind="corrupt",
                    step=0,
                    array="A",
                    index=0,
                    value=[f"#F{a}"],
                    attempt=a,
                )
                for a in range(upto)
            ]
        )

    with pytest.raises(UnrecoverableFaultError):
        run_ordinary_on_pram(system, processors=2, fault_plan=plan(8))
    out, metrics = run_ordinary_on_pram(
        system, processors=2, fault_plan=plan(8), max_retries=8
    )
    assert out == run_ordinary(system)
    assert metrics.faults_recovered == metrics.faults_detected > 0


def test_faults_on_sequential_baseline_program():
    system = _chain(10)
    plan = FaultPlan.random(3, steps=10, count=3, kinds=("corrupt", "delay"))
    out, metrics = run_sequential_on_pram(system, fault_plan=plan)
    assert out == run_ordinary(system)
    assert metrics.faults_recovered == metrics.faults_detected


def test_faults_on_gir_pipeline():
    n = 6
    system = GIRSystem.build(
        [2, 3] + [1] * n,
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        modular_mul(10**9 + 7),
    )
    oracle = run_gir(system)
    plan = FaultPlan.random(11, steps=4, count=3)
    out, metrics = run_gir_on_pram(system, processors=2, fault_plan=plan)
    assert out == oracle
    assert metrics.faults_recovered == metrics.faults_detected


def test_memory_checkpoint_restore_abort():
    from repro.pram import SharedMemory

    mem = SharedMemory()
    mem.alloc("A", [1, 2, 3])
    saved = mem.checkpoint()
    mem.write(0, "A", 1, 99)
    mem.commit()
    assert mem.peek("A", 1) == 99
    mem.write(0, "A", 2, 77)
    mem.restore(saved)
    assert mem.snapshot("A") == [1, 2, 3]
    mem.write(0, "A", 0, 5)
    mem.abort()
    mem.commit()
    assert mem.snapshot("A") == [1, 2, 3]


def test_conflict_during_faulted_attempt_is_detected():
    # A duplicated writer on an EREW machine makes the victim read the
    # same cells twice -- legal -- but two *different* processors
    # writing is what EREW forbids; emulate a transient conflict by
    # dropping one of two cooperating writers so the arbitration
    # changes, then confirm plain EREW violations still raise on a
    # fault-free machine.
    machine = PRAM(processors=2, policy=AccessPolicy.EREW)
    machine.memory.alloc("A", [0])

    def writer(value):
        def thunk(ctx):
            ctx.write("A", 0, value)

        return thunk

    from repro.pram import MemoryConflictError

    with pytest.raises(MemoryConflictError):
        machine.superstep([(0, writer(1)), (1, writer(2))])

    # With a fault plan, the conflicting step is retried and, since the
    # conflict is systematic, ends in UnrecoverableFaultError instead of
    # leaking the raw conflict.
    machine2 = PRAM(
        processors=2, policy=AccessPolicy.EREW, fault_plan=FaultPlan()
    )
    machine2.memory.alloc("A", [0])
    with pytest.raises(UnrecoverableFaultError):
        machine2.superstep([(0, writer(1)), (1, writer(2))])
    assert machine2.metrics.faults_detected > 0


def test_corrupt_resolution_edge_cases():
    plan = FaultPlan(seed=1)
    event = FaultEvent(kind="corrupt", step=0, array="missing")
    assert plan.resolve_corruption(event, {"A": [1, 2]}) is None
    event = FaultEvent(kind="corrupt", step=0, array="A", index=9)
    assert plan.resolve_corruption(event, {"A": [1, 2]}) is None
    event = FaultEvent(kind="corrupt", step=0)
    name, index, value = plan.resolve_corruption(event, {"A": [1, 2]})
    assert name == "A" and 0 <= index < 2
    assert value[0] == "#FAULT"
    assert plan.resolve_corruption(event, {}) is None


def test_proc_resolution_edge_cases():
    plan = FaultPlan(seed=1)
    event = FaultEvent(kind="drop", step=0, proc=99)
    assert plan.resolve_proc(event, [0, 1, 2]) is None
    assert plan.resolve_proc(event, []) is None
    open_event = FaultEvent(kind="drop", step=0)
    assert plan.resolve_proc(open_event, [4, 5]) in (4, 5)


def test_fault_metrics_in_obs_registry():
    from repro import obs

    system = _chain(10)
    plan = FaultPlan.random(7, steps=5, count=3)
    with obs.observed() as (_tracer, registry):
        run_ordinary_on_pram(system, processors=2, fault_plan=plan)
        names = {e["name"] for e in registry.snapshot()}
    assert "pram.faults.injected" in names
    assert "pram.faults.detected" in names
    assert "pram.faults.recovered" in names
