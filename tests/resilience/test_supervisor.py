"""Pool supervision: heartbeat watchdog, hang recovery, segment reaping.

Unit tests drive :class:`PoolSupervisor` through fake heartbeat
callables (no real pool); integration tests inject a real hang into
the shm worker pool via :mod:`repro.chaos` and assert bounded
kill-and-respawn recovery; subprocess tests assert that NO
shared-memory segment outlives the run -- and no resource_tracker
warnings fire -- across SIGTERM, KeyboardInterrupt, and worker-crash
exits (the historical ``/dev/shm`` leak).
"""

import multiprocessing
import os
import signal
import subprocess
import sys
import textwrap
import time
from multiprocessing import shared_memory

import pytest

from repro.resilience.supervisor import (
    HB_DONE,
    PoolSupervisor,
    reap_segments,
    register_segment,
    registered_segments,
    unregister_segment,
)
from repro.resilience import supervisor as supervisor_mod

WORKERS = int(os.environ.get("REPRO_SHM_TEST_WORKERS", "2"))


def wait_until(predicate, timeout=5.0, step=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return predicate()


class TestPoolSupervisorUnit:
    def make(self, hb, kills, alive=lambda r: True):
        return PoolSupervisor(
            read_heartbeats=lambda: list(hb),
            rank_alive=alive,
            kill_rank=kills.append,
            poll_floor_s=0.01,
        )

    def test_lagging_stale_rank_is_killed(self):
        hb, kills = [0, 5], []

        def kill(rank):
            # emulate the real pool: the victim's death aborts the
            # barrier and the siblings finish with "aborted" replies
            kills.append(rank)
            for i in range(len(hb)):
                if i != rank:
                    hb[i] = HB_DONE

        sup = PoolSupervisor(
            read_heartbeats=lambda: list(hb),
            rank_alive=lambda r: True,
            kill_rank=kill,
            poll_floor_s=0.01,
        )
        try:
            sup.arm(0.05)
            assert wait_until(lambda: kills)
            # only the lagging rank; the blocked-but-ahead sibling is
            # a victim of the barrier, not the culprit
            assert kills == [0]
            assert sup.disarm() == [0]
        finally:
            sup.close()

    def test_moving_heartbeats_are_never_killed(self):
        hb, kills = [0, 0], []
        sup = self.make(hb, kills)
        try:
            sup.arm(0.08)
            for _ in range(12):
                hb[0] += 1
                hb[1] += 1
                time.sleep(0.02)
            assert kills == []
            assert sup.disarm() == []
        finally:
            sup.close()

    def test_finished_ranks_are_exempt(self):
        hb, kills = [HB_DONE, 3], []
        sup = self.make(hb, kills)
        try:
            sup.arm(0.05)
            assert wait_until(lambda: kills)
            assert 0 not in kills  # parked at HB_DONE: never a candidate
            assert kills == [1]
        finally:
            sup.close()

    def test_dead_ranks_are_the_crash_path_not_ours(self):
        hb, kills = [0, 0], []
        sup = self.make(hb, kills, alive=lambda r: False)
        try:
            sup.arm(0.05)
            time.sleep(0.3)
            assert kills == []
        finally:
            sup.close()

    def test_disarm_stops_watching(self):
        hb, kills = [0, 0], []
        sup = self.make(hb, kills)
        try:
            sup.arm(0.05)
            sup.disarm()
            time.sleep(0.3)
            assert kills == []
        finally:
            sup.close()


class TestHangRecovery:
    def test_hung_worker_is_killed_respawned_and_result_exact(self):
        from repro.chaos import ChaosPlan, run_chaos

        report = run_chaos(
            ChaosPlan.single("hang", round=1, rank=0, delay_s=60.0),
            n=5_000,
            workers=WORKERS,
            watchdog_s=0.5,
        )
        assert report["ok"], report["error"]
        assert report["oracle_exact"]
        assert report["backend"] == "shm"  # recovered in place
        assert report["hang_kills"] >= 1
        assert report["respawns"] >= 1
        # bounded recovery: watchdog + respawn, nowhere near the 120s
        # barrier backstop that used to be the only way out
        assert report["latency_s"] < 30.0

    def test_watchdog_disabled_leaves_hang_to_the_deadline(self):
        from repro.chaos import ChaosPlan
        from repro.core import ADD, OrdinaryIRSystem
        from repro.engine import solve
        from repro.errors import SolveTimeoutError
        from repro.resilience import SolvePolicy
        import numpy as np

        rng = np.random.default_rng(0)
        n = 2_000
        sys_ = OrdinaryIRSystem.build(
            rng.integers(0, 100, size=n + 1).tolist(),
            np.arange(1, n + 1),
            np.arange(n),
            ADD,
        )
        plan = ChaosPlan.single("hang", round=1, rank=0, delay_s=2.0)
        policy = SolvePolicy(timeout_s=0.5, on_exhaustion="raise")
        started = time.monotonic()
        with pytest.raises((SolveTimeoutError, Exception)):
            solve(
                sys_,
                backend="shm",
                policy=policy,
                failover=False,
                options={
                    "workers": WORKERS,
                    "chaos": plan,
                    "watchdog_s": -1.0,  # explicit off
                    "max_retries": 0,
                },
            )
        assert time.monotonic() - started < 30.0


class _IsolatedRegistry:
    """Swap out the process-wide segment registry for one test -- the
    suite's own persistent pools keep their registrations."""

    def __enter__(self):
        with supervisor_mod._SEG_LOCK:
            self._saved = dict(supervisor_mod._SEGMENTS)
            supervisor_mod._SEGMENTS.clear()
        return self

    def __exit__(self, *exc):
        with supervisor_mod._SEG_LOCK:
            supervisor_mod._SEGMENTS.update(self._saved)
        return False


class TestSegmentReaper:
    def test_reap_unlinks_registered_segments(self):
        with _IsolatedRegistry():
            seg = shared_memory.SharedMemory(create=True, size=64)
            register_segment(seg.name)
            assert seg.name in registered_segments()
            reaped = reap_segments()
            assert seg.name in reaped
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=seg.name)
            seg.close()

    def test_unregistered_segments_are_left_alone(self):
        with _IsolatedRegistry():
            seg = shared_memory.SharedMemory(create=True, size=64)
            register_segment(seg.name)
            unregister_segment(seg.name)
            assert reap_segments() == []
            probe = shared_memory.SharedMemory(name=seg.name)
            probe.close()
            seg.unlink()
            seg.close()

    def test_reap_is_idempotent(self):
        with _IsolatedRegistry():
            seg = shared_memory.SharedMemory(create=True, size=64)
            register_segment(seg.name)
            assert reap_segments()
            assert reap_segments() == []
            seg.close()

    def test_fork_child_never_reaps_the_masters_segments(self):
        seg = shared_memory.SharedMemory(create=True, size=64)
        register_segment(seg.name)
        try:
            ctx = multiprocessing.get_context("fork")
            queue = ctx.Queue()

            def child(q):
                q.put(reap_segments())

            proc = ctx.Process(target=child, args=(queue,))
            proc.start()
            assert queue.get(timeout=10) == []
            proc.join(timeout=10)
            # master's segment untouched by the child's reap attempt
            probe = shared_memory.SharedMemory(name=seg.name)
            probe.close()
        finally:
            unregister_segment(seg.name)
            seg.unlink()
            seg.close()


_LEAK_SCRIPT_PRELUDE = """
import os, signal, sys
import numpy as np
from repro.core import ADD, OrdinaryIRSystem
from repro.engine import solve
from repro.errors import FaultError
from repro.resilience.supervisor import registered_segments

rng = np.random.default_rng(0)
n = 2000
sys_ = OrdinaryIRSystem.build(
    rng.integers(0, 100, size=n + 1).tolist(),
    np.arange(1, n + 1),
    np.arange(n),
    ADD,
)
"""


class TestNoSegmentOutlivesTheRun:
    def run_script(self, body, expect_rc=None):
        script = _LEAK_SCRIPT_PRELUDE + textwrap.dedent(body)
        env = dict(os.environ)
        root = os.path.join(os.path.dirname(__file__), "..", "..")
        env["PYTHONPATH"] = os.path.abspath(os.path.join(root, "src"))
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )
        segs = []
        for line in proc.stdout.splitlines():
            if line.startswith("SEGS:"):
                segs = [s for s in line[5:].split(",") if s]
        assert segs, (proc.stdout, proc.stderr)
        leaked = [s for s in segs if os.path.exists(f"/dev/shm/{s}")]
        assert leaked == [], f"segments outlived the run: {leaked}"
        assert "resource_tracker" not in proc.stderr, proc.stderr
        if expect_rc is not None:
            assert proc.returncode == expect_rc, (
                proc.returncode, proc.stderr
            )
        return proc

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="needs a /dev/shm mount"
    )
    def test_sigterm_reaps_everything(self):
        self.run_script(
            """
            solve(sys_, backend="shm", options={"workers": 2})
            print("SEGS:" + ",".join(registered_segments()), flush=True)
            os.kill(os.getpid(), signal.SIGTERM)
            """,
            expect_rc=-signal.SIGTERM,
        )

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="needs a /dev/shm mount"
    )
    def test_keyboard_interrupt_reaps_everything(self):
        self.run_script(
            """
            solve(sys_, backend="shm", options={"workers": 2})
            print("SEGS:" + ",".join(registered_segments()), flush=True)
            raise KeyboardInterrupt
            """
        )

    @pytest.mark.skipif(
        not os.path.isdir("/dev/shm"), reason="needs a /dev/shm mount"
    )
    def test_worker_crash_leaves_no_segments(self):
        self.run_script(
            """
            try:
                solve(
                    sys_,
                    backend="shm",
                    failover=False,
                    options={
                        "workers": 2,
                        "_test_crash": {"rank": 0, "round": 1, "once": False},
                    },
                )
            except FaultError:
                pass
            print("SEGS:" + ",".join(registered_segments()), flush=True)
            """,
            expect_rc=0,
        )
