"""Flight recorder: ring-buffer semantics, crash-report structure,
and the structured-error hook wired into :mod:`repro.errors`."""

import json

import pytest

from repro.errors import FaultError, ReproError, VerificationError
from repro.obs.recorder import (
    FlightRecorder,
    configure,
    get_recorder,
    on_structured_error,
    record_event,
)


@pytest.fixture(autouse=True)
def _clean_recorder():
    configure(dump_dir="")
    get_recorder().clear()
    yield
    configure(dump_dir="")
    get_recorder().clear()


class TestRing:
    def test_records_in_order(self):
        rec = FlightRecorder(capacity=8)
        rec.record("a", x=1)
        rec.record("b", x=2)
        kinds = [e["kind"] for e in rec.events()]
        assert kinds == ["a", "b"]
        assert rec.events()[0]["x"] == 1
        assert rec.events()[0]["seq"] == 0

    def test_wraparound_keeps_newest(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("e", i=i)
        events = rec.events()
        assert len(events) == 4
        assert [e["i"] for e in events] == [6, 7, 8, 9]

    def test_clear(self):
        rec = FlightRecorder(capacity=4)
        rec.record("e")
        rec.clear()
        assert rec.events() == []

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_configure_resizes_process_recorder(self):
        before = get_recorder()
        record_event("probe")
        after = configure(capacity=before.capacity * 2)
        assert after is get_recorder()
        assert after.capacity == before.capacity * 2
        assert after.events() == []  # resize drops the buffer
        configure(capacity=before.capacity)


class TestCrashReport:
    def test_report_shape(self):
        rec = FlightRecorder(capacity=8)
        rec.record("round", rounds=3)
        report = rec.crash_report(FaultError("worker 1 died"))
        assert report["schema_version"] == 1
        assert report["error"]["type"] == "FaultError"
        assert report["error"]["exit_code"] == 7
        assert "worker 1 died" in report["error"]["message"]
        assert any(e["kind"] == "round" for e in report["events"])

    def test_no_dump_without_dir(self):
        rec = FlightRecorder(capacity=4)
        rec.dump_dir = None
        assert rec.dump_crash(FaultError("x")) is None

    def test_dump_writes_json(self, tmp_path):
        rec = FlightRecorder(capacity=4)
        rec.dump_dir = str(tmp_path)
        rec.record("round", rounds=2)
        path = rec.dump_crash(VerificationError("mismatch"))
        assert path is not None
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["error"]["exit_code"] == 6
        assert doc["events"][-1]["kind"] == "round"

    def test_dump_never_raises(self):
        rec = FlightRecorder(capacity=4)
        rec.dump_dir = "/dev/null/not-a-directory"
        assert rec.dump_crash(FaultError("x")) is None


class TestStructuredErrorHook:
    def test_error_event_buffered(self):
        on_structured_error(FaultError("boom"))
        last = get_recorder().events()[-1]
        assert last["kind"] == "error"
        assert last["error"] == "FaultError"
        assert last["exit_code"] == 7

    def test_repro_error_construction_buffers_event(self):
        exc = FaultError("constructed")
        events = [e for e in get_recorder().events() if e["kind"] == "error"]
        assert any("constructed" in e["message"] for e in events)
        assert exc.crash_report_path is None  # dumping disabled

    def test_structured_code_dumps_when_configured(self, tmp_path):
        configure(dump_dir=str(tmp_path))
        record_event("round", rounds=5)
        exc = FaultError("dump me")
        assert exc.crash_report_path is not None
        with open(exc.crash_report_path, encoding="utf-8") as handle:
            doc = json.load(handle)
        kinds = [e["kind"] for e in doc["events"]]
        assert "round" in kinds and "error" in kinds

    def test_generic_code_never_dumps(self, tmp_path):
        configure(dump_dir=str(tmp_path))
        exc = ReproError("plain")  # exit code 1: not a structured failure
        assert exc.crash_report_path is None
        assert list(tmp_path.iterdir()) == []

    def test_env_var_arms_fresh_recorder(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CRASH_DIR", str(tmp_path))
        rec = FlightRecorder(capacity=4)
        assert rec.dump_dir == str(tmp_path)
