"""Tests for the span tracer (repro.obs.tracer)."""

import threading

import pytest

from repro import obs
from repro.obs import Span, Tracer, traced


class TestSpanTree:
    def test_nesting(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current_span() is inner
            assert tracer.current_span() is outer
        assert tracer.current_span() is None
        roots = tracer.roots()
        assert [s.name for s in roots] == ["outer"]
        assert [s.name for s in roots[0].children] == ["inner"]
        assert roots[0].children[0].parent_id == roots[0].span_id

    def test_siblings(self):
        tracer = Tracer()
        with tracer.span("parent"):
            for i in range(3):
                with tracer.span("child", index=i):
                    pass
        (parent,) = tracer.roots()
        assert [c.attributes["index"] for c in parent.children] == [0, 1, 2]

    def test_multiple_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.name for s in tracer.roots()] == ["a", "b"]

    def test_durations_monotonic(self):
        tracer = Tracer()
        with tracer.span("t") as sp:
            assert sp.end is None
        assert sp.end is not None
        assert sp.duration >= 0
        assert sp.start >= tracer.epoch

    def test_attributes(self):
        tracer = Tracer()
        with tracer.span("t", n=5) as sp:
            sp.set_attribute("rounds", 3)
        assert sp.attributes == {"n": 5, "rounds": 3}

    def test_error_attribute_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("x")
        (root,) = tracer.roots()
        assert root.attributes["error"] == "ValueError"
        assert root.end is not None  # closed despite the exception

    def test_walk_and_find(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                with tracer.span("b"):
                    pass
        assert [s.name for s in tracer.spans()] == ["a", "b", "b"]
        assert len(tracer.find("b")) == 2

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        tracer.clear()
        assert tracer.roots() == []

    def test_span_ids_unique(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        ids = [s.span_id for s in tracer.spans()]
        assert len(set(ids)) == len(ids)


class TestThreading:
    def test_threads_get_independent_stacks(self):
        tracer = Tracer()
        seen = {}

        def worker(tag):
            with tracer.span(f"root-{tag}"):
                seen[tag] = tracer.current_span().name

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        with tracer.span("main-root"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        # worker spans must NOT nest under the main thread's span
        names = {s.name for s in tracer.roots()}
        assert names == {"main-root"} | {f"root-{i}" for i in range(4)}
        assert seen == {i: f"root-{i}" for i in range(4)}


class TestInstallation:
    def test_disabled_by_default(self):
        assert obs.get_tracer() is None
        assert obs.get_registry() is None
        assert not obs.is_enabled()

    def test_observed_restores(self):
        with obs.observed() as (tracer, registry):
            assert obs.get_tracer() is tracer
            assert obs.get_registry() is registry
        assert obs.get_tracer() is None
        assert obs.get_registry() is None

    def test_observed_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.observed():
                raise RuntimeError("x")
        assert not obs.is_enabled()

    def test_enable_disable(self):
        tracer, registry = obs.enable()
        try:
            assert obs.get_tracer() is tracer
        finally:
            obs.disable()
        assert not obs.is_enabled()

    def test_nested_observed_restores_outer(self):
        with obs.observed() as (outer, _):
            with obs.observed() as (inner, _):
                assert obs.get_tracer() is inner
            assert obs.get_tracer() is outer

    def test_maybe_span_without_tracer(self):
        with obs.maybe_span(None, "x") as sp:
            assert sp is None

    def test_maybe_span_with_tracer(self):
        tracer = Tracer()
        with obs.maybe_span(tracer, "x", k=1) as sp:
            assert isinstance(sp, Span)
        assert tracer.find("x")[0].attributes == {"k": 1}


class TestTracedDecorator:
    def test_records_when_enabled(self):
        @traced("my.fn", kind="test")
        def fn(x):
            return x + 1

        with obs.observed() as (tracer, _):
            assert fn(1) == 2
        (span,) = tracer.find("my.fn")
        assert span.attributes == {"kind": "test"}

    def test_noop_when_disabled(self):
        @traced()
        def fn(x):
            return x * 2

        assert fn(3) == 6  # no tracer installed: plain call

    def test_default_name(self):
        @traced()
        def some_function():
            return 1

        with obs.observed() as (tracer, _):
            some_function()
        assert len(tracer.find("TestTracedDecorator.test_default_name.<locals>.some_function")) == 1
