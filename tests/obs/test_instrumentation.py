"""End-to-end checks that the instrumented hot paths report exactly
what the solvers' own stats records observe -- the round-count claims
are the paper's claims, so the trace must agree with SolveStats."""

import math

import numpy as np
import pytest

from repro import obs
from repro.core import (
    CONCAT,
    FLOAT_MUL,
    GIRSystem,
    OrdinaryIRSystem,
    modular_mul,
)
from repro.core.cap import count_all_paths
from repro.core.depgraph import build_dependence_graph
from repro.core.moebius import AffineRecurrence
from .._legacy_solvers import solve_affine_numpy, solve_gir, solve_moebius, solve_ordinary, solve_ordinary_numpy


def fig3_system(n):
    """The Fig-3 workload shape: a maximal multiplication chain."""
    return OrdinaryIRSystem.build(
        np.full(n + 1, 1.0000001), np.arange(1, n + 1), np.arange(n), FLOAT_MUL
    )


class TestOrdinarySolvers:
    @pytest.mark.parametrize("solver,engine", [
        (solve_ordinary, "python"),
        (solve_ordinary_numpy, "numpy"),
    ])
    def test_round_spans_agree_with_stats(self, solver, engine):
        system = fig3_system(257)
        with obs.observed() as (tracer, registry):
            _out, stats = solver(system, collect_stats=True)
        rounds = tracer.find("solver.round")
        assert len(rounds) == stats.rounds == math.ceil(math.log2(257))
        assert [s.attributes["active"] for s in rounds] == stats.active_per_round
        assert registry.value("solver.rounds", engine=engine) == stats.rounds
        assert registry.value("solver.init_ops", engine=engine) == stats.init_ops
        hist = registry.get("solver.active_cells", engine=engine)
        assert hist.sum == sum(stats.active_per_round)

    def test_root_span_attributes(self):
        system = fig3_system(64)
        with obs.observed() as (tracer, _):
            _out, stats = solve_ordinary_numpy(system, collect_stats=True)
        (root,) = tracer.find("solver.ordinary")
        assert root.attributes["n"] == 64
        assert root.attributes["rounds"] == stats.rounds
        assert len(root.children) == stats.rounds

    def test_results_identical_with_and_without_tracing(self):
        system = fig3_system(100)
        plain, plain_stats = solve_ordinary_numpy(system, collect_stats=True)
        with obs.observed():
            traced, traced_stats = solve_ordinary_numpy(
                system, collect_stats=True
            )
        assert plain == traced
        assert plain_stats.active_per_round == traced_stats.active_per_round

    def test_no_spans_recorded_when_disabled(self):
        assert not obs.is_enabled()
        solve_ordinary_numpy(fig3_system(32))
        assert not obs.is_enabled()


class TestCAP:
    def fib_graph(self, n):
        system = GIRSystem.build(
            [2, 3] + [1] * n,
            [i + 2 for i in range(n)],
            [i + 1 for i in range(n)],
            list(range(n)),
            modular_mul(97),
        )
        return build_dependence_graph(system)

    def test_iteration_spans_agree_with_result(self):
        graph = self.fib_graph(20)
        with obs.observed() as (tracer, registry):
            result = count_all_paths(graph)
        iterations = tracer.find("cap.iteration")
        assert len(iterations) == result.iterations
        assert [
            s.attributes["compositions"] for s in iterations
        ] == result.work_per_iteration
        assert registry.value("cap.iterations") == result.iterations
        assert registry.value("cap.edge_work") == result.edge_work
        assert registry.get("cap.edges_live").updates == result.iterations

    def test_root_attributes(self):
        graph = self.fib_graph(12)
        with obs.observed() as (tracer, _):
            result = count_all_paths(graph)
        (root,) = tracer.find("cap.count_all_paths")
        assert root.attributes["iterations"] == result.iterations
        assert root.attributes["edge_work"] == result.edge_work


class TestGIR:
    def test_phase_spans(self):
        n = 10
        system = GIRSystem.build(
            [2, 3] + [1] * n,
            [i + 2 for i in range(n)],
            [i + 1 for i in range(n)],
            list(range(n)),
            modular_mul(97),
        )
        with obs.observed() as (tracer, registry):
            _out, stats = solve_gir(system, collect_stats=True)
        (root,) = tracer.find("solver.gir")
        child_names = [c.name for c in root.children]
        assert child_names == ["gir.build_graph", "gir.cap", "gir.evaluate"]
        assert root.attributes["cap_iterations"] == stats.cap_iterations
        (evaluate,) = tracer.find("gir.evaluate")
        assert evaluate.attributes["power_ops"] == stats.power_ops
        assert evaluate.attributes["combine_ops"] == stats.combine_ops
        assert registry.value("gir.power_ops") == stats.power_ops
        # the CAP spans nest inside gir.cap
        (cap_root,) = tracer.find("cap.count_all_paths")
        assert cap_root.parent_id == tracer.find("gir.cap")[0].span_id

    def test_normalize_phase_when_renaming(self):
        op = modular_mul(97)
        system = GIRSystem.build([1, 2], [0, 0], [1, 1], [1, 0], op)
        with obs.observed() as (tracer, _):
            solve_gir(system)
        assert len(tracer.find("gir.normalize")) == 1


class TestMoebius:
    def recurrence(self, n):
        return AffineRecurrence.build(
            [1.0] * (n + 1),
            list(range(1, n + 1)),
            list(range(n)),
            [1.5] * n,
            [0.5] * n,
        )

    def test_object_engine_phases(self):
        rec = self.recurrence(8)
        with obs.observed() as (tracer, _):
            solve_moebius(rec, engine="numpy")
        (root,) = tracer.find("solver.moebius")
        assert [c.name for c in root.children] == [
            "moebius.coefficients",
            "moebius.ir_solve",
            "moebius.evaluate",
        ]
        # the inner OrdinaryIR solve is traced under ir_solve
        (inner,) = tracer.find("solver.ordinary")
        assert inner.parent_id == tracer.find("moebius.ir_solve")[0].span_id

    def test_affine_fast_path_rounds(self):
        rec = self.recurrence(33)
        with obs.observed() as (tracer, registry):
            _out, stats = solve_affine_numpy(rec, collect_stats=True)
        rounds = tracer.find("solver.round")
        assert len(rounds) == stats.rounds == math.ceil(math.log2(33))
        assert registry.value("solver.rounds", engine="affine") == stats.rounds
        (root,) = tracer.find("solver.moebius")
        assert root.attributes["engine"] == "affine"


class TestPRAM:
    def test_superstep_spans_and_registry(self):
        from repro.pram import PRAM

        machine = PRAM(processors=2)
        machine.memory.alloc("A", [0] * 6)

        def write(i):
            return lambda ctx: ctx.write("A", i, i * i)

        with obs.observed() as (tracer, registry):
            machine.superstep([(i, write(i)) for i in range(6)])
            machine.superstep([(i, write(i)) for i in range(3)])
        spans = tracer.find("pram.superstep")
        assert len(spans) == machine.metrics.supersteps == 2
        assert [s.attributes["virtual"] for s in spans] == [6, 3]
        assert [s.attributes["bursts"] for s in spans] == [
            step.bursts for step in machine.metrics.steps
        ]
        assert (
            registry.value("pram.superstep.work", processors=2)
            == machine.metrics.work
        )
        assert (
            registry.value("pram.superstep.time", processors=2)
            == machine.metrics.time
        )
        assert registry.value("pram.supersteps", processors=2) == 2

    def test_publish_run_metrics_replays(self):
        from repro.obs import MetricsRegistry
        from repro.pram.metrics import RunMetrics, publish_run_metrics

        metrics = RunMetrics(processors=4)
        metrics.add_step(virtual=8, bursts=2, time=10, work=16)
        metrics.add_step(virtual=4, bursts=1, time=5, work=4)
        registry = MetricsRegistry()
        publish_run_metrics(metrics, registry)
        assert registry.value("pram.superstep.work", processors=4) == 20
        assert registry.value("pram.supersteps", processors=4) == 2


class TestLoops:
    def test_parallelize_span_records_method(self):
        from repro.loops.ast import AffineIndex, Assign, BinOp, Loop, Ref
        from repro.loops.transform import parallelize

        loop = Loop(
            6,
            Assign(
                Ref("A", AffineIndex(1, 1)),
                BinOp("+", Ref("A", AffineIndex(1, 0)), Ref("A", AffineIndex(1, 1))),
            ),
        )
        env = {"A": [float(x) for x in range(7)]}
        plain = parallelize(loop, env)
        with obs.observed() as (tracer, registry):
            traced = parallelize(loop, env)
        assert traced.env == plain.env
        (span,) = tracer.find("loops.parallelize")
        assert span.attributes["method"] == traced.method
        assert (
            registry.value("loops.parallelized", method=traced.method) == 1
        )
