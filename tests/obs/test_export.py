"""Tests for the exporters (repro.obs.export)."""

import io
import json

import pytest

from repro import obs
from repro.obs import MetricsRegistry, SchemaError, Tracer
from repro.obs.export import (
    SCHEMA_VERSION,
    to_chrome_trace,
    tree_summary,
    validate_event,
    validate_jsonl,
    write_chrome_trace,
    write_jsonl,
)


def _sample():
    tracer = Tracer()
    registry = MetricsRegistry()
    with tracer.span("solver.ordinary", engine="numpy", n=8) as root:
        for r in range(3):
            with tracer.span("solver.round", round=r, active=8 >> r):
                pass
        root.set_attribute("rounds", 3)
    registry.counter("solver.rounds", engine="numpy").inc(3)
    registry.gauge("cap.edges_live").set(5)
    registry.histogram("solver.active_cells").observe(4)
    return tracer, registry


class TestJSONL:
    def test_roundtrip_validates(self, tmp_path):
        tracer, registry = _sample()
        path = str(tmp_path / "events.jsonl")
        written = write_jsonl(path, tracer, registry)
        assert validate_jsonl(path) == written
        # 1 meta + 4 spans + 3 metrics
        assert written == 8

    def test_meta_header_first(self):
        tracer, registry = _sample()
        buf = io.StringIO()
        write_jsonl(buf, tracer, registry)
        first = json.loads(buf.getvalue().splitlines()[0])
        assert first == {"type": "meta", "schema_version": SCHEMA_VERSION}

    def test_span_event_shape(self):
        tracer, _ = _sample()
        buf = io.StringIO()
        write_jsonl(buf, tracer)
        events = [json.loads(line) for line in buf.getvalue().splitlines()]
        spans = [e for e in events if e["type"] == "span"]
        root = spans[0]
        assert root["name"] == "solver.ordinary"
        assert root["parent_id"] is None
        assert root["attrs"]["rounds"] == 3
        child = spans[1]
        assert child["parent_id"] == root["span_id"]
        assert child["ts_us"] >= root["ts_us"]
        assert child["dur_us"] >= 0

    def test_non_jsonable_attrs_coerced(self, tmp_path):
        tracer = Tracer()
        with tracer.span("t", obj=object()):
            pass
        path = str(tmp_path / "e.jsonl")
        write_jsonl(path, tracer)
        assert validate_jsonl(path) == 2

    def test_validate_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"type": "meta", "schema_version": 1}\nnot json\n')
        with pytest.raises(SchemaError, match="line 2"):
            validate_jsonl(str(path))

    def test_validate_rejects_missing_header(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"type": "metric", "name": "x", "kind": "counter", "labels": {}}\n'
        )
        with pytest.raises(SchemaError, match="meta header"):
            validate_jsonl(str(path))

    def test_validate_rejects_empty(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(SchemaError, match="empty"):
            validate_jsonl(str(path))

    def test_validate_event_rejections(self):
        with pytest.raises(SchemaError):
            validate_event([])
        with pytest.raises(SchemaError):
            validate_event({"type": "nope"})
        with pytest.raises(SchemaError):
            validate_event({"type": "span", "name": "x"})  # missing fields
        with pytest.raises(SchemaError):
            validate_event(
                {"type": "metric", "name": "x", "kind": "weird", "labels": {}}
            )


class TestChromeTrace:
    def test_complete_events(self, tmp_path):
        tracer, registry = _sample()
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, tracer, registry)
        with open(path) as handle:
            trace = json.load(handle)
        events = trace["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 4  # root + 3 rounds
        for e in xs:
            assert set(e) >= {"name", "ph", "ts", "dur", "pid", "tid", "args"}
            assert e["dur"] >= 0
        rounds = [e for e in xs if e["name"] == "solver.round"]
        assert [e["args"]["round"] for e in rounds] == [0, 1, 2]
        # metrics ride along in otherData
        names = {m["name"] for m in trace["otherData"]["metrics"]}
        assert "solver.rounds" in names

    def test_category_is_name_prefix(self):
        tracer, _ = _sample()
        trace = to_chrome_trace(tracer)
        cats = {e["cat"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert cats == {"solver"}

    def test_process_metadata(self):
        tracer, _ = _sample()
        trace = to_chrome_trace(tracer, process_name="bench")
        meta = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert meta[0]["args"]["name"] == "bench"


class TestTreeSummary:
    def test_contains_spans_and_metrics(self):
        tracer, registry = _sample()
        text = tree_summary(tracer, registry)
        assert "solver.ordinary" in text
        assert "rounds=3" in text
        assert "solver.round" in text
        assert "cap.edges_live" in text
        assert "histogram" in text

    def test_child_truncation(self):
        tracer = Tracer()
        with tracer.span("root"):
            for i in range(10):
                with tracer.span("c", i=i):
                    pass
        text = tree_summary(tracer, max_children=4)
        assert "(6 more)" in text

    def test_empty(self):
        assert tree_summary(None, None) == "(nothing recorded)"

    def test_attribute_truncation(self):
        tracer = Tracer()
        with tracer.span("root", blob="x" * 500, short="ok"):
            pass
        text = tree_summary(tracer, max_attr_len=20)
        assert "x" * 17 + "..." in text
        assert "x" * 18 not in text
        assert "short=ok" in text
        # default keeps more but still bounds the line
        assert "x" * 77 + "..." in tree_summary(tracer)


class TestShmChromeRoundTrip:
    def _shm_like_trace(self):
        """A tracer shaped like an observed shm solve: solve root,
        per-attempt driver span, nested per-round spans."""
        tracer = Tracer()
        registry = MetricsRegistry()
        with tracer.span("engine.solve", backend="shm", family="ordinary"):
            with tracer.span("engine.shm.run", attempt=0, workers=2):
                for r in range(4):
                    with tracer.span("engine.shm.round", round=r):
                        pass
        registry.histogram(
            "engine.shm.worker.barrier_wait_s", proc="worker-0"
        ).observe(0.002)
        return tracer, registry

    def test_round_trip_preserves_nesting(self, tmp_path):
        tracer, registry = self._shm_like_trace()
        path = str(tmp_path / "shm_trace.json")
        write_chrome_trace(path, tracer, registry)
        with open(path) as handle:
            trace = json.load(handle)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        by_name = {}
        for e in xs:
            by_name.setdefault(e["name"], []).append(e)
        assert len(by_name["engine.shm.round"]) == 4
        (root,) = by_name["engine.solve"]
        (run,) = by_name["engine.shm.run"]
        # nesting survives as interval containment on one thread
        assert root["ts"] <= run["ts"]
        assert run["ts"] + run["dur"] <= root["ts"] + root["dur"] + 1e-3
        for e in by_name["engine.shm.round"]:
            assert run["ts"] <= e["ts"]
            assert e["ts"] + e["dur"] <= run["ts"] + run["dur"] + 1e-3
        # per-worker metric series ride along with labels intact
        metrics = trace["otherData"]["metrics"]
        (wait,) = [
            m for m in metrics
            if m["name"] == "engine.shm.worker.barrier_wait_s"
        ]
        assert wait["labels"] == {"proc": "worker-0"}
        assert wait["count"] == 1

    def test_jsonl_round_trip_validates(self, tmp_path):
        tracer, registry = self._shm_like_trace()
        path = str(tmp_path / "shm.jsonl")
        written = write_jsonl(path, tracer, registry)
        assert validate_jsonl(path) == written
        with open(path) as handle:
            docs = [json.loads(line) for line in handle]
        spans = [d for d in docs if d.get("type") == "span"]
        rounds = [s for s in spans if s["name"] == "engine.shm.round"]
        assert len(rounds) == 4
        run = next(s for s in spans if s["name"] == "engine.shm.run")
        assert all(s["parent_id"] == run["span_id"] for s in rounds)


class TestValidateRejections:
    def test_rejects_non_object_line(self, tmp_path):
        tracer, registry = _sample()
        path = tmp_path / "bad.jsonl"
        write_jsonl(str(path), tracer, registry)
        with open(path, "a") as handle:
            handle.write("[1, 2, 3]\n")
        with pytest.raises(SchemaError):
            validate_jsonl(str(path))

    def test_rejects_negative_duration(self, tmp_path):
        tracer, registry = _sample()
        path = tmp_path / "neg.jsonl"
        write_jsonl(str(path), tracer, registry)
        lines = path.read_text().splitlines()
        doc = json.loads(lines[1])
        assert doc["type"] == "span"
        doc["dur_us"] = -5.0
        lines[1] = json.dumps(doc)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaError):
            validate_jsonl(str(path))

    def test_rejects_unknown_metric_kind(self, tmp_path):
        tracer, registry = _sample()
        path = tmp_path / "kind.jsonl"
        write_jsonl(str(path), tracer, registry)
        lines = path.read_text().splitlines()
        idx, doc = next(
            (i, json.loads(l)) for i, l in enumerate(lines)
            if json.loads(l).get("type") == "metric"
        )
        doc["kind"] = "sketch"
        lines[idx] = json.dumps(doc)
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(SchemaError):
            validate_jsonl(str(path))


class TestCLIValidator:
    def test_module_entry(self, tmp_path, capsys):
        from repro.obs.export import _main

        tracer, registry = _sample()
        path = str(tmp_path / "e.jsonl")
        write_jsonl(path, tracer, registry)
        assert _main(["validate", path]) == 0
        assert "conform" in capsys.readouterr().out

    def test_module_entry_invalid(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("{}\n")
        from repro.obs.export import _main

        assert _main(["validate", str(path)]) == 1
        assert "INVALID" in capsys.readouterr().out
