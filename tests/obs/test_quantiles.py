"""Histogram quantile estimation: the log2 bucket ladder answers
``percentile(q)`` to within one bucket (a factor of 2) of the true
nearest-rank sorted-sample quantile."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import MetricsRegistry
from repro.obs.metrics import MIN_BUCKET_BOUND, Histogram, bucket_bound


def _hist(values):
    h = Histogram("t", {})
    for v in values:
        h.observe(v)
    return h


def _nearest_rank(values, q):
    """The reference quantile: rank ``ceil(q * n)`` of the sorted
    sample (1-indexed), the same rank convention the histogram uses."""
    data = sorted(values)
    rank = max(1, math.ceil(q * len(data)))
    return data[rank - 1]


class TestPercentileBasics:
    def test_empty_is_none(self):
        assert _hist([]).percentile(0.5) is None

    def test_out_of_range_rejected(self):
        h = _hist([1.0])
        with pytest.raises(ValueError):
            h.percentile(-0.01)
        with pytest.raises(ValueError):
            h.percentile(1.01)

    def test_q0_is_min_q1_is_max(self):
        h = _hist([3.0, 9.0, 1.5])
        assert h.percentile(0.0) == 1.5
        assert h.percentile(1.0) == 9.0  # clamped to observed max

    def test_single_observation(self):
        h = _hist([0.37])
        for q in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert h.percentile(q) == 0.37

    def test_estimate_clamped_to_observed_range(self):
        # 100 fast, 1 slow: p99 must not exceed the observed max even
        # though the slow sample's bucket bound does
        h = _hist([0.001] * 100 + [3.0])
        assert h.percentile(1.0) == 3.0
        assert h.percentile(0.5) <= 0.002

    def test_monotone_in_q(self):
        h = _hist([0.01, 0.02, 0.4, 1.0, 2.5, 70.0])
        qs = [0.1, 0.25, 0.5, 0.75, 0.9, 0.99]
        est = [h.percentile(q) for q in qs]
        assert est == sorted(est)

    def test_subsecond_buckets_resolve(self):
        # latencies well below 1.0 must not collapse into one bucket
        h = _hist([0.001] * 90 + [0.5] * 10)
        assert h.percentile(0.5) < 0.01
        assert h.percentile(0.99) >= 0.25

    def test_snapshot_carries_p50_p99(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.1, 0.2, 0.3):
            h.observe(v)
        (entry,) = reg.snapshot()
        assert entry["p50"] == h.percentile(0.5)
        assert entry["p99"] == h.percentile(0.99)


class TestBucketLadder:
    def test_bounds_cover_value(self):
        for v in (1e-9, 0.001, 0.3, 0.5, 0.7, 1.0, 1.5, 2.0, 100.0):
            b = bucket_bound(v)
            assert b >= min(v, MIN_BUCKET_BOUND)
            if v > MIN_BUCKET_BOUND:
                assert b / 2 < v <= b

    def test_integer_bounds_at_and_above_one(self):
        assert bucket_bound(1.0) == 1
        assert bucket_bound(3.0) == 4
        assert isinstance(bucket_bound(3.0), int)
        assert bucket_bound(0.4) == 0.5


# values comfortably above the bottom bucket so every bucket satisfies
# the strict b/2 < x <= b containment the error bound relies on
positive_samples = st.lists(
    st.floats(min_value=2.0 ** -16, max_value=2.0 ** 30,
              allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


class TestPercentileProperty:
    @settings(max_examples=200, deadline=None)
    @given(values=positive_samples, q=st.floats(min_value=0.01, max_value=1.0))
    def test_within_one_bucket_of_sorted_sample_quantile(self, values, q):
        h = _hist(values)
        est = h.percentile(q)
        true = _nearest_rank(values, q)
        assert true <= est <= 2 * true

    @settings(max_examples=100, deadline=None)
    @given(values=positive_samples)
    def test_estimate_inside_observed_range(self, values):
        h = _hist(values)
        for q in (0.0, 0.5, 0.9, 0.99, 1.0):
            est = h.percentile(q)
            assert min(values) <= est <= max(values)
