"""Cross-process metric aggregation: per-kind merge semantics and the
worker-snapshot fan-in (``proc=worker-N`` plus rolled-up series).

The property tests pin down the algebra the shm backend relies on:
merging snapshots is associative and order-insensitive, so the master
can fold worker snapshots in any arrival order and converge on the
same aggregate.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import MetricsRegistry, merge_snapshot, merge_worker_snapshots
from repro.obs.metrics import Counter, Gauge, Histogram


def _counter_entry(value):
    return {"name": "c", "kind": "counter", "labels": {}, "value": value}


def _gauge_entry(value, ts, lo=None, hi=None, updates=1):
    return {
        "name": "g", "kind": "gauge", "labels": {},
        "value": value, "min": lo if lo is not None else value,
        "max": hi if hi is not None else value, "updates": updates, "ts": ts,
    }


def _hist_of(values):
    h = Histogram("h", {})
    for v in values:
        h.observe(v)
    return h


def _hist_entry(values):
    return {"name": "h", "kind": "histogram", "labels": {},
            **_hist_of(values).snapshot()}


class TestCounterMerge:
    def test_sums(self):
        c = Counter("c", {})
        c.inc(3)
        c.merge(_counter_entry(4))
        assert c.value == 7

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10 ** 9), max_size=8))
    def test_order_insensitive(self, amounts):
        import itertools

        results = set()
        for perm in itertools.islice(itertools.permutations(amounts), 6):
            c = Counter("c", {})
            for a in perm:
                c.merge(_counter_entry(a))
            results.add(c.value)
        assert len(results) <= 1


class TestGaugeMerge:
    def test_latest_ts_wins(self):
        g = Gauge("g", {})
        g.merge(_gauge_entry(10.0, ts=100.0))
        g.merge(_gauge_entry(5.0, ts=200.0))
        g.merge(_gauge_entry(99.0, ts=50.0))  # stale write loses
        assert g.value == 5.0
        assert g.min == 5.0
        assert g.max == 99.0
        assert g.updates == 3

    def test_empty_snapshot_ignored(self):
        g = Gauge("g", {})
        g.set(7.0)
        g.merge({"value": None, "min": None, "max": None,
                 "updates": 0, "ts": None})
        assert g.value == 7.0
        assert g.updates == 1

    @settings(max_examples=80, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(-1e6, 1e6, allow_nan=False),
                st.floats(1.0, 1e9, allow_nan=False),
            ),
            min_size=1,
            max_size=6,
        )
    )
    def test_order_insensitive(self, writes):
        import itertools

        entries = [_gauge_entry(v, ts=t) for v, t in writes]
        states = set()
        for perm in itertools.islice(itertools.permutations(entries), 6):
            g = Gauge("g", {})
            for e in perm:
                g.merge(e)
            states.add((g.value, g.min, g.max, g.updates, g.ts))
        assert len(states) == 1


hist_values = st.lists(
    st.floats(min_value=2.0 ** -16, max_value=2.0 ** 20,
              allow_nan=False, allow_infinity=False),
    max_size=50,
)


class TestHistogramMerge:
    def test_merge_equals_union(self):
        a, b = [0.1, 0.2, 4.0], [0.15, 100.0]
        h = _hist_of(a)
        h.merge(_hist_entry(b))
        ref = _hist_of(a + b)
        assert h.count == ref.count
        assert h.buckets == ref.buckets
        assert h.min == ref.min and h.max == ref.max
        assert h.sum == pytest.approx(ref.sum)

    def test_bucket_keys_survive_json_stringification(self):
        # snapshots stringify bucket keys; merge must fold "2" into
        # the int-2 bucket, not a parallel "2.0" float bucket
        h = _hist_of([1.5])  # bucket 2
        h.merge(_hist_entry([1.7]))  # snapshot carries {"2": 1}
        assert h.buckets == {2: 2}

    @settings(max_examples=60, deadline=None)
    @given(a=hist_values, b=hist_values, c=hist_values)
    def test_associative(self, a, b, c):
        left = _hist_of(a)
        left.merge(_hist_entry(b))
        left.merge(_hist_entry(c))

        inner = _hist_of(b)
        inner.merge(_hist_entry(c))
        right = _hist_of(a)
        right.merge({"name": "h", "kind": "histogram", "labels": {},
                     **inner.snapshot()})

        assert left.count == right.count
        assert left.buckets == right.buckets
        assert left.min == right.min and left.max == right.max
        assert left.sum == pytest.approx(right.sum)


class TestMergeSnapshot:
    def test_merges_by_kind_and_labels(self):
        src = MetricsRegistry()
        src.counter("rounds", engine="shm").inc(5)
        src.gauge("cells").set(10)
        src.histogram("wait").observe(0.25)

        dst = MetricsRegistry()
        dst.counter("rounds", engine="shm").inc(2)
        n = merge_snapshot(dst, src.snapshot())
        assert n == 3
        assert dst.value("rounds", engine="shm") == 7
        assert dst.get("cells").value == 10
        assert dst.get("wait").count == 1

    def test_extra_labels_fork_series(self):
        src = MetricsRegistry()
        src.counter("rounds").inc(4)
        dst = MetricsRegistry()
        merge_snapshot(dst, src.snapshot(), extra_labels={"proc": "worker-0"})
        assert dst.value("rounds", proc="worker-0") == 4
        assert dst.get("rounds") is None  # no unlabeled series created

    def test_unknown_kind_skipped(self):
        dst = MetricsRegistry()
        n = merge_snapshot(dst, [{"name": "x", "kind": "mystery",
                                  "labels": {}, "value": 1}])
        assert n == 0

    def test_kind_collision_raises(self):
        dst = MetricsRegistry()
        dst.counter("x").inc()
        with pytest.raises(TypeError):
            merge_snapshot(dst, [{"name": "x", "kind": "gauge",
                                  "labels": {}, "value": 1.0, "min": 1.0,
                                  "max": 1.0, "updates": 1, "ts": 1.0}])


class TestMergeWorkerSnapshots:
    def _worker_snap(self, rounds, wait):
        reg = MetricsRegistry()
        reg.counter("engine.shm.worker.rounds").inc(rounds)
        reg.histogram("engine.shm.worker.barrier_wait_s").observe(wait)
        return reg.snapshot()

    def test_per_worker_and_rollup_series(self):
        master = MetricsRegistry()
        merged = merge_worker_snapshots(
            master,
            {0: self._worker_snap(3, 0.01), 1: self._worker_snap(5, 0.02)},
        )
        assert merged == 8  # 2 series x 2 workers x (proc + rollup)
        assert master.value("engine.shm.worker.rounds", proc="worker-0") == 3
        assert master.value("engine.shm.worker.rounds", proc="worker-1") == 5
        # rolled-up series aggregate across procs
        assert master.value("engine.shm.worker.rounds") == 8
        rollup = master.get("engine.shm.worker.barrier_wait_s")
        assert rollup.count == 2

    def test_order_insensitive_across_ranks(self):
        a = {0: self._worker_snap(3, 0.01), 1: self._worker_snap(5, 0.02)}
        m1, m2 = MetricsRegistry(), MetricsRegistry()
        merge_worker_snapshots(m1, a)
        merge_worker_snapshots(m2, dict(reversed(list(a.items()))))
        assert m1.snapshot() == m2.snapshot()
