"""Prometheus exposition, the live HTTP endpoint, and the terminal
snapshot tooling (``obs top`` / ``obs diff``)."""

import json
import os
import threading
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    PromFileWriter,
    diff_snapshots,
    format_diff,
    format_top,
    load_snapshot_file,
    serve_http,
    to_prometheus,
    write_prom_file,
)
from repro.obs.prom import sanitize_name


def _registry():
    reg = MetricsRegistry()
    reg.counter("engine.solves", backend="numpy").inc(3)
    reg.gauge("engine.shm.worker.shard_cells", proc="worker-0").set(128)
    h = reg.histogram("engine.session.latency_s", backend="numpy")
    for v in (0.001, 0.002, 0.3, 1.5):
        h.observe(v)
    return reg


def _parse_exposition(text):
    """Scrape-parse exposition text: {sample_name+labels: value} plus
    the '# TYPE' declarations -- the format contract a Prometheus
    scraper relies on."""
    samples, types = {}, {}
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(maxsplit=3)
            types[name] = kind
            continue
        assert not line.startswith("#"), line
        key, value = line.rsplit(" ", 1)
        assert key not in samples, f"duplicate sample {key}"
        samples[key] = float(value)
    return samples, types


class TestSanitize:
    def test_dots_become_underscores(self):
        assert sanitize_name("engine.session.latency_s") == (
            "engine_session_latency_s"
        )

    def test_leading_digit_prefixed(self):
        assert sanitize_name("9lives")[0] == "_"


class TestExposition:
    def test_counter_total_suffix(self):
        samples, types = _parse_exposition(to_prometheus(_registry().snapshot()))
        assert samples['engine_solves_total{backend="numpy"}'] == 3
        assert types["engine_solves_total"] == "counter"

    def test_gauge_with_min_max_companions(self):
        samples, types = _parse_exposition(to_prometheus(_registry().snapshot()))
        sel = '{proc="worker-0"}'
        assert samples[f"engine_shm_worker_shard_cells{sel}"] == 128
        assert samples[f"engine_shm_worker_shard_cells_min{sel}"] == 128
        assert samples[f"engine_shm_worker_shard_cells_max{sel}"] == 128
        assert types["engine_shm_worker_shard_cells"] == "gauge"

    def test_unset_gauge_omitted(self):
        reg = MetricsRegistry()
        reg.gauge("idle")
        assert to_prometheus(reg.snapshot()).strip() == ""

    def test_histogram_buckets_cumulative(self):
        samples, types = _parse_exposition(to_prometheus(_registry().snapshot()))
        sel = 'backend="numpy"'
        assert types["engine_session_latency_s"] == "histogram"
        assert samples[f'engine_session_latency_s_count{{{sel}}}'] == 4
        assert samples[
            f'engine_session_latency_s_bucket{{{sel},le="+Inf"}}'
        ] == 4
        # cumulative counts never decrease along the ladder
        buckets = sorted(
            (float(k.split('le="')[1].rstrip('"}')), v)
            for k, v in samples.items()
            if "_bucket" in k and "+Inf" not in k
        )
        counts = [v for _, v in buckets]
        assert counts == sorted(counts)
        assert counts[-1] <= 4

    def test_valid_sample_lines(self):
        # every non-comment line is "<name>{...} <float>"
        text = to_prometheus(_registry().snapshot())
        _parse_exposition(text)  # raises on malformed lines
        assert text.endswith("\n")


class TestFileTransport:
    def test_write_and_reload(self, tmp_path):
        path = str(tmp_path / "metrics.prom")
        text = write_prom_file(path, _registry())
        with open(path, encoding="utf-8") as handle:
            assert handle.read() == text
        assert not [p for p in os.listdir(tmp_path) if ".tmp." in p]

    def test_source_can_be_callable(self, tmp_path):
        path = str(tmp_path / "m.prom")
        write_prom_file(path, lambda: _registry().snapshot())
        samples, _ = _parse_exposition(open(path, encoding="utf-8").read())
        assert samples['engine_solves_total{backend="numpy"}'] == 3

    def test_file_writer_writes_final_snapshot(self, tmp_path):
        path = str(tmp_path / "w.prom")
        writer = PromFileWriter(path, _registry(), interval_s=60.0)
        writer.start()
        writer.stop()  # long interval: only the stop() write happens
        assert os.path.exists(path)

    def test_load_snapshot_file_accepts_both_shapes(self, tmp_path):
        snap = _registry().snapshot()
        bare = tmp_path / "bare.json"
        bare.write_text(json.dumps(snap))
        wrapped = tmp_path / "wrapped.json"
        wrapped.write_text(json.dumps({"metrics": snap, "other": 1}))
        assert load_snapshot_file(str(bare)) == snap
        assert load_snapshot_file(str(wrapped)) == snap


class TestHttpEndpoint:
    @pytest.fixture()
    def server(self):
        srv = serve_http(_registry(), port=0)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        yield srv
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)

    def _get(self, server, path):
        port = server.server_address[1]
        return urllib.request.urlopen(
            f"http://127.0.0.1:{port}{path}", timeout=10
        )

    def test_scrape_parses(self, server):
        resp = self._get(server, "/metrics")
        assert resp.status == 200
        assert "version=0.0.4" in resp.headers["Content-Type"]
        samples, types = _parse_exposition(resp.read().decode("utf-8"))
        assert samples['engine_solves_total{backend="numpy"}'] == 3
        assert types["engine_session_latency_s"] == "histogram"

    def test_root_serves_metrics_too(self, server):
        assert self._get(server, "/").status == 200

    def test_unknown_path_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            self._get(server, "/nope")
        assert info.value.code == 404


class TestTop:
    def test_sections_and_counts(self):
        text = format_top(_registry().snapshot(), title="t=1")
        assert "t=1" in text
        assert "3 series (1 counters, 1 gauges, 1 histograms)" in text
        assert "HISTOGRAM" in text and "COUNTER" in text and "GAUGE" in text
        assert "engine.solves{backend=numpy}" in text

    def test_empty_snapshot(self):
        assert "0 series" in format_top([])


class TestDiff:
    def test_counter_delta_and_statuses(self):
        before = _registry()
        after = _registry()
        after.counter("engine.solves", backend="numpy").inc(2)
        after.counter("fresh").inc()
        rows = diff_snapshots(before.snapshot(), after.snapshot())
        by_name = {(r["name"], r["status"]): r for r in rows}
        assert by_name[("engine.solves", "changed")]["delta"] == 2
        assert ("fresh", "added") in by_name
        assert by_name[("engine.session.latency_s", "unchanged")]["delta"] == 0

    def test_removed_series(self):
        rows = diff_snapshots(_registry().snapshot(), [])
        assert {r["status"] for r in rows} == {"removed"}

    def test_format_diff_hides_unchanged(self):
        snap = _registry().snapshot()
        rows = diff_snapshots(snap, snap)
        assert format_diff(rows) == "0 series changed"
        assert "unchanged-ish" not in format_diff(rows, include_unchanged=True)
        assert "3 series" in format_diff(rows, include_unchanged=True)
