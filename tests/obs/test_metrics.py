"""Tests for the metrics registry (repro.obs.metrics)."""

import pytest

from repro.obs import MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        reg = MetricsRegistry()
        c = reg.counter("x")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_same_labels_same_series(self):
        reg = MetricsRegistry()
        reg.counter("solver.rounds", engine="numpy").inc()
        reg.counter("solver.rounds", engine="numpy").inc()
        reg.counter("solver.rounds", engine="python").inc()
        assert reg.value("solver.rounds", engine="numpy") == 2
        assert reg.value("solver.rounds", engine="python") == 1


class TestGauge:
    def test_tracks_last_min_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("cap.edges_live")
        g.set(10)
        g.set(3)
        g.set(7)
        assert (g.value, g.min, g.max, g.updates) == (7, 3, 10, 3)

    def test_unset_gauge(self):
        g = MetricsRegistry().gauge("g")
        assert g.value is None
        assert g.snapshot()["updates"] == 0


class TestHistogram:
    def test_summary_stats(self):
        reg = MetricsRegistry()
        h = reg.histogram("active")
        for v in (1, 2, 4, 100):
            h.observe(v)
        assert h.count == 4
        assert h.sum == 107
        assert h.min == 1
        assert h.max == 100
        assert h.mean == pytest.approx(26.75)

    def test_power_of_two_buckets(self):
        h = MetricsRegistry().histogram("h")
        for v in (1, 2, 3, 5, 100):
            h.observe(v)
        # upper bounds: 1->1, 2->2, 3->4, 5->8, 100->128
        assert h.buckets == {1: 1, 2: 1, 4: 1, 8: 1, 128: 1}


class TestRegistry:
    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_get_never_creates(self):
        reg = MetricsRegistry()
        assert reg.get("missing") is None
        assert reg.value("missing", default=42) == 42
        assert list(reg.series()) == []

    def test_snapshot_is_jsonable_and_sorted(self):
        import json

        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.gauge("a", k="v").set(1.5)
        reg.histogram("c").observe(3)
        snap = reg.snapshot()
        assert [e["name"] for e in snap] == ["a", "b", "c"]
        parsed = json.loads(json.dumps(snap))
        assert parsed[1] == {"name": "b", "kind": "counter", "labels": {}, "value": 2}

    def test_clear(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        reg.clear()
        assert reg.snapshot() == []
