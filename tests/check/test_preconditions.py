"""The precondition prover, and its integration with the eager
validation paths in ``repro.core`` (exit-code-3 failures now carry the
same structured ``Finding`` payloads the prover emits)."""

import numpy as np
import pytest

from repro.check import check_system
from repro.check.preconditions import (
    check_gir,
    check_moebius,
    check_ordinary,
)
from repro.core import ADD, CONCAT, GIRSystem, OrdinaryIRSystem
from repro.core.moebius import RationalRecurrence
from repro.core.operators import make_operator
from repro.core.workloads import chain_system, fibonacci_gir_system
from repro.errors import CyclicDependenceError, IRValidationError


def codes(report):
    return {f.code for f in report.findings}


class TestOrdinary:
    def test_valid_system_clean(self):
        report = check_ordinary(chain_system(50))
        assert report.ok
        assert report.checks_run >= 4

    def test_non_injective_g_is_pre001(self):
        system = OrdinaryIRSystem.build(
            [1.0, 1.0, 1.0], [1, 1], [0, 0], ADD, validate=False
        )
        report = check_ordinary(system)
        assert not report.ok
        assert "PRE001" in codes(report)

    def test_domain_violation_is_pre002(self):
        # Eager validation blocks out-of-domain maps at build time, so
        # corrupt the array afterwards -- the prover is the defense for
        # systems mutated (or deserialized) past the constructor.
        system = OrdinaryIRSystem.build(
            [1.0, 1.0, 1.0], [1, 2], [0, 1], ADD
        )
        system.f[1] = 9
        report = check_ordinary(system)
        assert not report.ok
        assert "PRE002" in codes(report)

    def test_non_associative_operator_is_pre005(self):
        shaky = make_operator(
            "shaky", lambda a, b: a - b, associative=False, commutative=False
        )
        system = OrdinaryIRSystem.build(
            [1.0, 1.0, 1.0], [1, 2], [0, 1], shaky, validate=False
        )
        report = check_ordinary(system)
        assert "PRE005" in codes(report)


class TestGIR:
    def test_valid_system_clean(self):
        report = check_gir(fibonacci_gir_system(16))
        assert report.ok

    def test_non_commutative_operator_is_pre004(self):
        n = 4
        system = GIRSystem.build(
            [("a",)] * (n + 1),
            list(range(1, n + 1)),
            list(range(n)),
            list(range(n)),
            CONCAT,
            validate=False,
        )
        report = check_gir(system)
        assert "PRE004" in codes(report)

    def test_cycle_finding_constructor_is_pre003(self):
        from repro.check.preconditions import graph_cycle_finding

        finding = graph_cycle_finding([0, 1, 2], [0, 1, 2, 0])
        assert finding.code == "PRE003"
        assert finding.severity == "error"

    def test_non_distinct_g_noted_as_ir008(self):
        system = GIRSystem.build(
            [1, 1, 1], [0, 0], [1, 2], [1, 2], ADD, validate=False
        )
        report = check_gir(system)
        assert report.ok  # renaming handles it; info only
        assert "IR008" in codes(report)


class TestMoebius:
    def build(self, c, d):
        return RationalRecurrence.build(
            [1.0, 0.0, 0.0], [1, 2], [0, 1],
            [1.0, 1.0], [0.5, 0.5], c, d,
        )

    def test_valid_recurrence_clean(self):
        report = check_moebius(self.build([0.0, 0.0], [1.0, 1.0]))
        assert report.ok

    def test_non_finite_coefficient_is_pre007(self):
        report = check_moebius(self.build([float("nan"), 0.0], [1.0, 1.0]))
        assert not report.ok
        assert "PRE007" in codes(report)

    def test_degenerate_det_is_pre006_info_only(self):
        # a*d - b*c = 0: constant map; absorbing rule applies, not an error.
        rec = RationalRecurrence.build(
            [1.0, 0.0, 0.0], [1, 2], [0, 1],
            [1.0, 1.0], [1.0, 0.5], [1.0, 0.0], [1.0, 1.0],
        )
        report = check_moebius(rec)
        assert report.ok
        assert "PRE006" in codes(report)


class TestDispatch:
    def test_check_system_routes_all_families(self):
        assert check_system(chain_system(10)).ok
        assert check_system(fibonacci_gir_system(8)).ok

    def test_unknown_source_is_pre008_warning(self):
        report = check_system(object())
        assert report.ok  # warning, not error
        assert "PRE008" in codes(report)


class TestCoreIntegration:
    """Satellite: eager validation raises with Finding payloads."""

    def test_domain_validation_carries_pre002(self):
        with pytest.raises(IRValidationError) as exc_info:
            OrdinaryIRSystem.build([1.0, 1.0, 1.0], [1, 2], [0, 9], ADD)
        err = exc_info.value
        assert err.findings and err.findings[0].code == "PRE002"
        assert err.findings[0].message in str(err)

    def test_graph_cycle_detection_carries_pre003(self):
        from repro.core.depgraph import DependenceGraph

        # build_dependence_graph cannot produce a cycle (sequential
        # semantics forbid it); hand-build one, as a malformed foreign
        # front end might.
        graph = DependenceGraph(
            n=3,
            m=3,
            target_f=np.array([1, 2, 0]),
            target_h=np.array([1, 2, 0]),
        )
        with pytest.raises(CyclicDependenceError) as exc_info:
            graph.validate_acyclic()
        err = exc_info.value
        assert err.findings and err.findings[0].code == "PRE003"
        assert err.cycle  # the legacy attribute is still populated

    def test_trace_walk_cycle_carries_pre003(self):
        from repro.core.traces import ordinary_trace_factors
        from repro.core.workloads import chain_system

        system = chain_system(4)
        looping_pred = np.array([1, 0, -1, -1, -1])
        with pytest.raises(CyclicDependenceError) as exc_info:
            ordinary_trace_factors(system, 0, looping_pred)
        err = exc_info.value
        assert err.findings and err.findings[0].code == "PRE003"

    def test_diagnosis_includes_findings(self):
        with pytest.raises(IRValidationError) as exc_info:
            OrdinaryIRSystem.build([1.0, 1.0], [5], [0], ADD)
        doc = exc_info.value.diagnosis()
        assert doc["findings"][0]["code"] == "PRE002"
        assert doc["findings"][0]["severity"] == "error"
