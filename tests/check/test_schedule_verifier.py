"""The schedule verifier: 100% acceptance of genuine planner output,
rejection of every adversarial mutation.

Acceptance runs the whole family matrix (ordinary, Moebius, GIR with
both dispatch and CAP artifacts), including serialized round trips --
the ``repro check`` file path -- and shm shard layouts for the CI
worker counts.  The mutation half is the verifier's own soundness
test: a verifier that accepts a corrupted schedule would sign off on
a silent data race.
"""

import pytest

from repro.check import (
    MUTATION_KINDS,
    SHARD_MUTATION_KINDS,
    mutate_plan,
    mutation_campaign,
    verify_or_raise,
    verify_plan,
    verify_shard_layout,
)
from repro.core.moebius import AffineRecurrence
from repro.core.workloads import (
    chain_system,
    double_chain_gir_system,
    fibonacci_gir_system,
    forest_system,
    random_ordinary_system,
    scatter_system,
)
from repro.engine import solve
from repro.engine.plan import plan_from_dict, plan_to_dict
from repro.engine.planner import PlanCache
from repro.engine.problem import Problem
from repro.errors import PlanVerificationError, exit_code_for

WORKER_COUNTS = (1, 2, 4, 8)


def plan_for(system):
    result = solve(system, backend="numpy", cache=PlanCache())
    assert result.plan is not None
    return Problem.from_system(system), result.plan


SYSTEMS = {
    "chain": lambda: chain_system(300),
    "forest": lambda: forest_system([64, 5, 5, 5, 1, 0]),
    "random": lambda: random_ordinary_system(200, seed=3),
    "fibonacci-gir": lambda: fibonacci_gir_system(24),
    "double-chain-gir": lambda: double_chain_gir_system(16),
    "scatter-gir": lambda: scatter_system(120, 12, seed=5),
}


class TestAcceptance:
    @pytest.mark.parametrize("name", sorted(SYSTEMS))
    def test_genuine_plan_accepted(self, name):
        system = SYSTEMS[name]()
        problem, plan = plan_for(system)
        report = verify_plan(
            plan,
            problem,
            system=system if problem.family == "gir" else None,
            workers=WORKER_COUNTS,
        )
        assert report.ok, [f.describe() for f in report.errors]
        assert report.checks_run > 0

    @pytest.mark.parametrize("name", sorted(SYSTEMS))
    def test_serialized_round_trip_accepted(self, name):
        system = SYSTEMS[name]()
        problem, plan = plan_for(system)
        rehydrated = plan_from_dict(plan_to_dict(plan))
        report = verify_plan(rehydrated, problem, workers=(2, 4))
        assert report.ok, [f.describe() for f in report.errors]

    def test_moebius_plan_accepted(self):
        n = 150
        rec = AffineRecurrence.build(
            initial=[1.0] + [0.0] * n,
            g=list(range(1, n + 1)),
            f=list(range(n)),
            a=[1.01] * n,
            b=[0.5] * n,
        )
        problem, plan = plan_for(rec)
        assert plan.family == "moebius"
        report = verify_plan(plan, problem, workers=WORKER_COUNTS)
        assert report.ok, [f.describe() for f in report.errors]

    def test_verify_or_raise_returns_report_when_clean(self):
        problem, plan = plan_for(chain_system(50))
        report = verify_or_raise(plan, problem)
        assert report.ok

    def test_gir_cap_oracle_runs_when_system_given(self):
        system = double_chain_gir_system(12)
        problem, plan = plan_for(system)
        report = verify_plan(plan, problem, system=system)
        assert report.ok
        # The deep oracle leaves its IR000 confirmation behind.
        assert "IR000" in report.codes()


class TestFingerprint:
    def test_plan_for_other_problem_rejected(self):
        _, plan = plan_for(chain_system(40))
        other = Problem.from_system(chain_system(41))
        report = verify_plan(plan, other)
        assert not report.ok
        assert report.errors[0].code == "SCH008"


class TestMutationRejection:
    @pytest.mark.parametrize("kind", MUTATION_KINDS)
    def test_every_kind_rejected_on_chain(self, kind):
        problem, plan = plan_for(chain_system(120))
        mut = mutate_plan(plan, kind, seed=0)
        assert mut is not None, f"{kind} inapplicable to a 120-chain plan"
        report = verify_plan(mut.plan, problem)
        assert not report.ok, f"{kind} survived: {mut.description}"

    @pytest.mark.parametrize("kind", SHARD_MUTATION_KINDS)
    def test_shard_mutations_rejected(self, kind):
        _, plan = plan_for(chain_system(120))
        mut = mutate_plan(plan, kind, seed=0, workers=4)
        assert mut is not None
        report = verify_shard_layout(
            mut.plan, mut.workers, boundaries=mut.boundaries
        )
        assert not report.ok
        assert report.errors[0].code == "SHM001"

    def test_full_campaign_rejected_across_shapes(self):
        total = rejected = 0
        for name in ("chain", "forest", "random"):
            problem, plan = plan_for(SYSTEMS[name]())
            for mut in mutation_campaign(plan, seeds=range(4)):
                total += 1
                if mut.boundaries is not None:
                    report = verify_shard_layout(
                        mut.plan, mut.workers, boundaries=mut.boundaries
                    )
                else:
                    report = verify_plan(mut.plan, problem)
                if not report.ok:
                    rejected += 1
        assert total > 0
        assert rejected == total, f"{total - rejected}/{total} mutants survived"

    def test_boundaries_override_requires_single_count(self):
        from repro.check.schedule import _verify_shard_layouts

        _, plan = plan_for(chain_system(30))
        mut = mutate_plan(plan, "shift_shard", seed=0, workers=4)
        with pytest.raises(ValueError):
            _verify_shard_layouts(plan, [2, 4], boundaries=mut.boundaries)


class TestShardLayouts:
    def test_genuine_layouts_all_counts(self):
        _, plan = plan_for(chain_system(100))
        for workers in WORKER_COUNTS:
            report = verify_shard_layout(plan, workers)
            assert report.ok, [f.describe() for f in report.errors]

    def test_zero_workers_rejected(self):
        _, plan = plan_for(chain_system(20))
        report = verify_shard_layout(plan, 0)
        assert not report.ok
        assert report.errors[0].code == "SHM001"

    def test_duplicate_active_straddling_boundary_is_shm002(self):
        # Duplicate an active id across a shard boundary by hand: the
        # one genuinely-racy layout SCH001 alone would also catch, but
        # the shard check must localize it to the barrier phase.
        _, plan = plan_for(chain_system(64))
        mut = mutate_plan(plan, "duplicate_active", seed=1)
        assert mut is not None
        report = verify_shard_layout(mut.plan, 4)
        codes = set()
        if not report.ok:
            codes = {f.code for f in report.errors}
        # Either the duplicate straddles a boundary (SHM002) or it
        # lands inside one shard -- then only SCH001 sees it, which
        # verify_plan layers on top (workers= runs after the schedule
        # proof, so the full path still rejects).
        full = verify_plan(mut.plan, workers=(4,))
        assert not full.ok
        assert codes <= {"SHM002"}


class TestRaiseContract:
    def test_error_carries_report_findings_and_exit_code(self):
        problem, plan = plan_for(chain_system(80))
        mut = mutate_plan(plan, "perturb_gather", seed=2)
        with pytest.raises(PlanVerificationError) as exc_info:
            verify_or_raise(mut.plan, problem)
        err = exc_info.value
        assert exit_code_for(err) == 8
        assert err.report is not None and not err.report.ok
        assert err.findings and err.findings[0].code.startswith("SCH")
        doc = err.diagnosis()
        assert doc["category"] == "check"
        assert doc["report"]["ok"] is False
        assert doc["findings"][0]["code"] == err.findings[0].code
