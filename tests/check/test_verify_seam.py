"""The ``verify_plan=`` opt-in seam (solve / execute / Session), the
``repro check`` / ``repro lint`` CLI verbs, and the package surface.
"""

import json

import pytest

from repro import obs
from repro.check import mutate_plan
from repro.cli import main
from repro.core import FLOAT_MUL
from repro.core.serialize import dump_system
from repro.core.workloads import chain_system, fibonacci_gir_system
from repro.engine import Session, execute, solve
from repro.engine.plan import plan_to_dict
from repro.engine.planner import PlanCache
from repro.engine.problem import Problem
from repro.errors import PlanVerificationError


def counter_value(registry, name, **labels):
    total = 0
    for entry in registry.snapshot():
        if entry["name"] == name and all(
            entry["labels"].get(k) == v for k, v in labels.items()
        ):
            total += entry["value"]
    return total


class TestSolveSeam:
    def test_verified_solve_matches_unverified(self):
        system = chain_system(120)
        plain = solve(system, backend="numpy", cache=PlanCache())
        checked = solve(
            system, backend="numpy", cache=PlanCache(), verify_plan=True
        )
        assert checked.values == plain.values

    def test_counters_count_accepted_verifications(self):
        system = chain_system(60)
        with obs.observed() as (_tracer, registry):
            solve(system, backend="numpy", cache=PlanCache(), verify_plan=True)
        assert (
            counter_value(
                registry,
                "check.plan.verifications",
                family="ordinary",
                outcome="accepted",
            )
            >= 1
        )
        assert (
            counter_value(
                registry,
                "check.preconditions",
                family="ordinary",
                outcome="accepted",
            )
            == 1
        )

    def test_caller_plan_verified_before_execution(self):
        system = chain_system(80)
        good = solve(system, backend="numpy", cache=PlanCache()).plan
        bad = mutate_plan(good, "perturb_gather", seed=0).plan
        with pytest.raises(PlanVerificationError):
            execute(bad, system, backend="numpy", verify_plan=True)
        # The same corrupted plan runs unchecked without the opt-in --
        # that's exactly the hole verify_plan= closes.
        execute(bad, system, backend="numpy")

    def test_poisoned_cache_hit_rejected(self):
        system = chain_system(70)
        problem = Problem.from_system(system)
        good = solve(system, backend="numpy", cache=PlanCache()).plan
        cache = PlanCache()
        cache.put(
            problem.fingerprint(), mutate_plan(good, "corrupt_pred", seed=1).plan
        )
        with pytest.raises(PlanVerificationError) as exc_info:
            solve(system, backend="numpy", cache=cache, verify_plan=True)
        assert exc_info.value.report is not None

    def test_precondition_failure_raises_before_planning(self):
        from repro.core import ADD, OrdinaryIRSystem

        system = OrdinaryIRSystem.build(
            [1.0, 1.0, 1.0], [1, 1], [0, 0], ADD, validate=False
        )
        with pytest.raises(PlanVerificationError) as exc_info:
            solve(system, backend="numpy", cache=PlanCache(), verify_plan=True)
        assert exc_info.value.findings[0].code == "PRE001"


class TestSessionSeam:
    def test_session_verifies_pinned_plan(self):
        system = chain_system(90)
        session = Session(system, backend="numpy", verify_plan=True)
        plain = Session(system, backend="numpy")
        assert session.solve().values == plain.solve().values

    def test_gir_session_verifies_captured_plan(self):
        system = fibonacci_gir_system(12)
        session = Session(system, backend="numpy", verify_plan=True)
        result = session.solve()
        assert result.plan is not None  # captured and verified


class TestCLI:
    def write_plan(self, tmp_path, plan, name):
        path = tmp_path / name
        path.write_text(json.dumps(plan_to_dict(plan)))
        return str(path)

    def test_check_accepts_genuine_plan_file(self, tmp_path, capsys):
        plan = solve(chain_system(100), backend="numpy", cache=PlanCache()).plan
        path = self.write_plan(tmp_path, plan, "plan.json")
        assert main(["check", path, "--workers", "2", "--workers", "4"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_check_rejects_mutated_plan_with_exit_8(self, tmp_path, capsys):
        plan = solve(chain_system(100), backend="numpy", cache=PlanCache()).plan
        bad = mutate_plan(plan, "swap_rounds", seed=0).plan
        path = self.write_plan(tmp_path, bad, "bad.json")
        assert main(["check", path, "--json"]) == 8
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is False
        assert any(f["code"].startswith("SCH") for f in report["findings"])

    def test_check_proves_system_files_end_to_end(self, tmp_path, capsys):
        path = str(tmp_path / "system.json")
        dump_system(chain_system(64, op=FLOAT_MUL), path)
        assert main(["check", path, "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"] is True and report["checks_run"] > 0

    def test_check_rejects_garbage_with_exit_2(self, tmp_path, capsys):
        path = tmp_path / "noise.json"
        path.write_text(json.dumps({"hello": 1}))
        assert main(["check", str(path)]) == 2

    def test_lint_reports_codes_as_json(self, tmp_path, capsys):
        path = tmp_path / "loops.py"
        path.write_text(
            "def k(X, Y, Z):\n"
            "    for i in range(1, 50):\n"
            "        X[i] = X[i - 1] * Y[i]\n"
            "    for i in range(3, 50):\n"
            "        Z[i] = Z[i - 1] + Z[i - 2] + Z[i - 3]\n"
        )
        assert main(["lint", str(path), "--json"]) == 0
        report = json.loads(capsys.readouterr().out)
        found = {f["code"] for f in report["findings"]}
        assert {"IR000", "IR001"} <= found

    def test_lint_consts_flag(self, tmp_path, capsys):
        path = tmp_path / "loops.py"
        path.write_text(
            "def k(X, Y):\n"
            "    for i in range(1, n):\n"
            "        X[i] = X[i - 1] * Y[i]\n"
        )
        assert main(["lint", str(path), "--const", "n=40"]) == 0
        assert main(["lint", str(path), "--const", "nonsense"]) == 2

    def test_solve_verify_flag(self, tmp_path):
        path = str(tmp_path / "system.json")
        dump_system(chain_system(32, op=FLOAT_MUL), path)
        assert main(["solve", path, "--verify"]) == 0


class TestSurface:
    def test_explicit_all_lists_resolve(self):
        # The dir()-built __all__ lists were replaced by explicit ones;
        # every exported name must actually exist.
        import importlib

        for mod_name in (
            "repro",
            "repro.check",
            "repro.core",
            "repro.analysis",
            "repro.loops",
            "repro.livermore",
            "repro.pram",
        ):
            mod = importlib.import_module(mod_name)
            missing = [n for n in mod.__all__ if not hasattr(mod, n)]
            assert not missing, f"{mod_name}.__all__ dangles: {missing}"

    def test_check_package_exports_the_three_layers(self):
        import repro.check as check

        for name in (
            "verify_plan",
            "verify_or_raise",
            "verify_shard_layout",
            "check_system",
            "lint_source",
            "mutation_campaign",
            "Finding",
            "CheckReport",
            "FINDING_CODES",
        ):
            assert name in check.__all__ and hasattr(check, name)
