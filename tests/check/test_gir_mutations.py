"""GIRPlan-v2 mutation classes: the CAP verifier's soundness test.

The acceptance half proves 100% of genuine CAP plans pass the
artifact proofs (CSR integrity + the tiered oracle); the rejection
half requires every mutation class to be caught at BOTH oracle
tiers -- the exact full oracle below ``GIR_ORACLE_MAX_N`` and the
modular-totals + sampled-row tier above it.

``gir_leaf_drift`` is the load-bearing case: it deletes a factor and
repairs every downstream row pointer, so the table is structurally
perfect and only the dependence-graph oracle can reject it.
"""

import pytest

from repro.check import (
    GIR_MUTATION_KINDS,
    GIR_ORACLE_MAX_N,
    mutate_plan,
    mutation_campaign,
    verify_plan,
)
from repro.core import GIRSystem
from repro.core.operators import modular_add
from repro.engine import solve
from repro.engine.planner import PlanCache


def leafy_gir(n, k=4):
    """x[i+k] = x[prev] op x[i % k]: every trace row keeps up to
    ``k`` distinct leaf cells, so row-local mutations always apply."""
    initial = list(range(1, n + k + 1))
    g = [i + k for i in range(n)]
    f = [i + k - 1 for i in range(n)]
    h = [i % k for i in range(n)]
    return GIRSystem.build(initial, g, f, h, modular_add(10**9 + 7))


def cap_plan_for(system):
    result = solve(system, cache=PlanCache())
    plan = result.plan
    assert plan.dispatch is None, "these tests need a true CAP plan"
    return plan


SMALL_N = 48
LARGE_N = GIR_ORACLE_MAX_N + 600  # forces the totals/sampled tier

# Which error codes may reject each kind, per oracle tier.
EXPECTED_CODES = {
    "gir_perturb_exponent": {"small": {"GIR004"}, "large": {"GIR007", "GIR008"}},
    "gir_truncate_rowptr": {"small": {"GIR006"}, "large": {"GIR006"}},
    "gir_swap_cells": {"small": {"GIR006"}, "large": {"GIR006"}},
    "gir_leaf_drift": {"small": {"GIR004"}, "large": {"GIR007", "GIR008"}},
}


@pytest.fixture(scope="module")
def small():
    system = leafy_gir(SMALL_N)
    return system, cap_plan_for(system)


@pytest.fixture(scope="module")
def large():
    system = leafy_gir(LARGE_N)
    return system, cap_plan_for(system)


class TestAcceptance:
    def test_genuine_small_plan_accepted(self, small):
        system, plan = small
        report = verify_plan(plan, system=system)
        assert report.ok, [f.describe() for f in report.errors]
        # Small n runs the exact full oracle and confirms via IR000.
        assert "IR000" in report.codes()

    def test_genuine_large_plan_accepted(self, large):
        system, plan = large
        report = verify_plan(plan, system=system)
        assert report.ok, [f.describe() for f in report.errors]


class TestMutationRejection:
    @pytest.mark.parametrize("kind", GIR_MUTATION_KINDS)
    def test_rejected_by_exact_oracle(self, small, kind):
        system, plan = small
        mut = mutate_plan(plan, kind, seed=0)
        assert mut is not None, f"{kind} inapplicable"
        report = verify_plan(mut.plan, system=system)
        assert not report.ok, f"{kind} survived: {mut.description}"
        codes = {f.code for f in report.errors}
        assert codes & EXPECTED_CODES[kind]["small"], codes

    @pytest.mark.parametrize("kind", GIR_MUTATION_KINDS)
    def test_rejected_above_oracle_cutoff(self, large, kind):
        system, plan = large
        mut = mutate_plan(plan, kind, seed=0)
        assert mut is not None, f"{kind} inapplicable"
        report = verify_plan(mut.plan, system=system)
        assert not report.ok, f"{kind} survived: {mut.description}"
        codes = {f.code for f in report.errors}
        assert codes & EXPECTED_CODES[kind]["large"], codes

    def test_campaign_defaults_to_gir_kinds_and_all_reject(self, small):
        system, plan = small
        muts = mutation_campaign(plan, seeds=range(4))
        assert {m.kind for m in muts} == set(GIR_MUTATION_KINDS)
        for mut in muts:
            report = verify_plan(mut.plan, system=system)
            assert not report.ok, f"{mut.kind} survived: {mut.description}"

    def test_mutations_never_alias_the_original(self, small):
        system, plan = small
        before = plan.table.row_ptr.copy(), plan.table.cells.copy()
        exps_before = list(plan.table.exponents)
        for kind in GIR_MUTATION_KINDS:
            mut = mutate_plan(plan, kind, seed=1)
            assert mut is not None
            assert mut.plan is not plan
        assert (plan.table.row_ptr == before[0]).all()
        assert (plan.table.cells == before[1]).all()
        assert list(plan.table.exponents) == exps_before
        report = verify_plan(plan, system=system)
        assert report.ok


class TestStructuralChecks:
    def test_trailing_entries_detected(self, small):
        # The inverse of gir_truncate_rowptr: extra entries past the
        # final row pointer (a table that does not close).
        _, plan = small
        mut = mutate_plan(plan, "gir_truncate_rowptr", seed=0)
        report = verify_plan(mut.plan)
        assert not report.ok
        assert report.errors[0].code == "GIR006"

    def test_unknown_kind_raises(self, small):
        _, plan = small
        with pytest.raises(ValueError):
            mutate_plan(plan, "gir_unknown", seed=0)
