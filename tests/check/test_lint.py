"""Loop lint: every UNSUPPORTED/fallback verdict must come with a
stable code explaining *which* structural feature blocked it, and
supported loops must name their strategy (IR000).

These are the recognizer's edge cases from the issue checklist:
degree>1 Moebius bodies, three-index bodies, own-cell-only reads --
plus the operator-algebra and guard diagnostics.
"""

import pytest

from repro.check import lint_loop, lint_program, lint_source
from repro.core.operators import CONCAT, make_operator
from repro.loops import loops_from_source
from repro.loops.ast import AffineIndex, Assign, Loop, OpApply, Ref


def codes(report):
    return {f.code for f in report.findings}


def by_code(report, code):
    return [f for f in report.findings if f.code == code]


def lint_first(source, **kwargs):
    program = loops_from_source(source, consts=kwargs.pop("consts", None))
    return lint_loop(program.loops[0], **kwargs)


class TestSupported:
    def test_linear_recurrence_names_strategy(self):
        report = lint_first(
            "def k(X, Y):\n"
            "    for i in range(1, 100):\n"
            "        X[i] = X[i - 1] * Y[i]\n"
        )
        assert report.ok
        (finding,) = by_code(report, "IR000")
        assert finding.severity == "info"
        assert "linear" in finding.message

    def test_own_cell_reduction_is_ir008_plus_ir000(self):
        # X[0] accumulates every iteration: non-injective g, handled by
        # single-assignment renaming -- informational, not a blocker.
        report = lint_first(
            "def k(X, Y):\n"
            "    for i in range(0, 50):\n"
            "        X[0] = X[0] + Y[i]\n"
        )
        assert report.ok
        assert "IR008" in codes(report)
        assert "IR000" in codes(report)


class TestDegree:
    def test_degree_two_body_is_ir006(self):
        report = lint_first(
            "def k(X, Y):\n"
            "    for i in range(0, 40):\n"
            "        X[0] = X[0] * X[0] + Y[i]\n"
        )
        findings = by_code(report, "IR006")
        assert findings and findings[0].severity == "warning"
        assert "degree" in findings[0].message

    def test_degree_one_body_stays_clean(self):
        report = lint_first(
            "def k(X, Y):\n"
            "    for i in range(1, 40):\n"
            "        X[i] = 2 * X[i - 1] + Y[i]\n"
        )
        assert report.ok
        assert "IR006" not in codes(report)


class TestUnsupported:
    def test_three_index_body_is_ir001(self):
        report = lint_first(
            "def k(Z):\n"
            "    for i in range(3, 100):\n"
            "        Z[i] = Z[i - 1] + Z[i - 2] + Z[i - 3]\n"
        )
        findings = by_code(report, "IR001")
        assert findings and findings[0].severity == "warning"

    def test_guard_reading_target_is_ir004(self):
        report = lint_first(
            "def k(X, Y):\n"
            "    for i in range(1, 50):\n"
            "        X[i] = X[i - 1] + Y[i] if X[i - 1] > 0 else Y[i]\n"
        )
        assert "IR004" in codes(report)


class TestOperatorAlgebra:
    def loop_with(self, op):
        # X[i] := op(X[i-1], X[i-2]) -- target read through two maps
        # with a generic operator: the GIR shape.
        body = Assign(
            Ref("X", AffineIndex(1, 2)),
            OpApply(op, Ref("X", AffineIndex(1, 1)), Ref("X", AffineIndex(1, 0))),
        )
        return Loop(40, body)

    def test_non_associative_operator_is_ir003_error(self):
        shaky = make_operator(
            "shaky", lambda a, b: a - b, associative=False, commutative=False
        )
        report = lint_loop(self.loop_with(shaky))
        assert not report.ok
        assert "IR003" in codes(report)

    def test_non_commutative_gir_operator_is_ir009_warning(self):
        report = lint_loop(self.loop_with(CONCAT))
        assert "IR009" in codes(report)
        # warning, not error: the lint explains the upcoming rejection
        assert all(f.severity != "error" for f in by_code(report, "IR009"))


class TestProgramAndSource:
    def test_program_findings_carry_loop_labels(self):
        program = loops_from_source(
            "def k(X, Y, Z):\n"
            "    for i in range(1, 60):\n"
            "        X[i] = X[i - 1] * Y[i]\n"
            "    for i in range(3, 60):\n"
            "        Z[i] = Z[i - 1] + Z[i - 2] + Z[i - 3]\n"
        )
        report = lint_program(program)
        wheres = {f.where for f in report.findings}
        assert any("loop 0" in w and "'X'" in w for w in wheres)
        assert any("loop 1" in w and "'Z'" in w for w in wheres)

    def test_lint_source_with_consts(self):
        report = lint_source(
            "def k(X, Y):\n"
            "    for i in range(1, n):\n"
            "        X[i] = X[i - 1] * Y[i]\n",
            consts={"n": 80},
        )
        assert report.ok
        assert "IR000" in codes(report)

    def test_frontend_error_propagates(self):
        from repro.loops.pyfrontend import FrontendError

        with pytest.raises(FrontendError):
            lint_source("def k(X):\n    X[0] = 1\n")
