"""Tests for the generic PRAM primitives and their closed-form costs."""

import numpy as np
import pytest

from repro.pram.primitives import (
    map_time,
    reduce_time,
    run_map_on_pram,
    run_reduce_on_pram,
    run_scan_on_pram,
    scan_time,
)


class TestMap:
    def test_result(self):
        out, _ = run_map_on_pram([1, 2, 3], lambda x: x * 10, processors=2)
        assert out == [10, 20, 30]

    @pytest.mark.parametrize("p", [1, 2, 5, 16])
    def test_time_matches_closed_form(self, p):
        n = 13
        _, metrics = run_map_on_pram(list(range(n)), lambda x: x, processors=p)
        assert metrics.time == map_time(n, p)

    def test_empty(self):
        out, metrics = run_map_on_pram([], lambda x: x)
        assert out == [] and metrics.time == 0


class TestReduce:
    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 9, 33])
    def test_result_any_size(self, n, rng):
        vals = rng.integers(-100, 100, size=n).tolist()
        out, _ = run_reduce_on_pram(vals, lambda a, b: a + b, processors=4)
        assert out == sum(vals)

    def test_non_commutative_order(self):
        vals = [(c,) for c in "abcdefg"]
        out, _ = run_reduce_on_pram(vals, lambda a, b: a + b, processors=8)
        assert out == tuple("abcdefg")

    @pytest.mark.parametrize("p", [1, 3, 8])
    def test_time_matches_closed_form(self, p):
        n = 21
        _, metrics = run_reduce_on_pram(
            list(range(n)), lambda a, b: a + b, processors=p
        )
        assert metrics.time == reduce_time(n, p)

    def test_logarithmic_supersteps(self):
        _, metrics = run_reduce_on_pram(
            list(range(64)), lambda a, b: a + b, processors=64
        )
        assert metrics.supersteps == 6

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            run_reduce_on_pram([], lambda a, b: a + b)


class TestScan:
    @pytest.mark.parametrize("n", [0, 1, 2, 5, 16, 31])
    def test_result_matches_cumsum(self, n, rng):
        vals = rng.integers(-9, 9, size=n).tolist()
        out, _ = run_scan_on_pram(vals, lambda a, b: a + b, processors=4)
        assert out == np.cumsum(vals).tolist() if n else out == []

    def test_non_commutative(self):
        vals = [(c,) for c in "abcd"]
        out, _ = run_scan_on_pram(vals, lambda a, b: a + b, processors=4)
        assert out[-1] == ("a", "b", "c", "d")

    @pytest.mark.parametrize("p", [1, 2, 7])
    def test_time_matches_closed_form(self, p):
        n = 19
        _, metrics = run_scan_on_pram(
            list(range(n)), lambda a, b: a + b, processors=p
        )
        assert metrics.time == scan_time(n, p)

    def test_synchronous_double_buffering(self):
        # the Kogge-Stone update reads pre-step values: with eager
        # (non-synchronous) updates the result would differ
        vals = [1] * 8
        out, _ = run_scan_on_pram(vals, lambda a, b: a + b, processors=8)
        assert out == [1, 2, 3, 4, 5, 6, 7, 8]


class TestCRCWMin:
    def test_matches_python_min(self, rng):
        from repro.pram.primitives import run_crcw_min_on_pram

        for n in (1, 2, 5, 12, 20):
            vals = rng.integers(-50, 50, size=n).tolist()
            got, metrics = run_crcw_min_on_pram(vals)
            assert got == min(vals)
            # constant depth: 2 supersteps (1 when there are no pairs)
            assert metrics.supersteps == (2 if n > 1 else 1)

    def test_first_minimum_on_ties(self):
        from repro.pram.primitives import run_crcw_min_on_pram

        got, _ = run_crcw_min_on_pram([3, 1, 1, 2])
        assert got == 1

    def test_bounded_processors_still_correct(self):
        from repro.pram.primitives import run_crcw_min_on_pram

        got, metrics = run_crcw_min_on_pram(list(range(10, 0, -1)), processors=3)
        assert got == 1
        assert metrics.bursts > 2  # n^2 virtual procs over 3 physical

    def test_empty_rejected(self):
        from repro.pram.primitives import run_crcw_min_on_pram

        with pytest.raises(ValueError):
            run_crcw_min_on_pram([])

    def test_requires_common_policy_semantics(self):
        """The algorithm's concurrent 'loser' writes all carry the same
        value: it must run cleanly under CRCW-common (a CREW machine
        would reject it)."""
        from repro.pram.machine import PRAM
        from repro.pram.memory import AccessPolicy, MemoryConflictError

        machine = PRAM(processors=4, policy=AccessPolicy.CREW)
        machine.memory.alloc("loser", [False])

        def mark(ctx):
            ctx.write("loser", 0, True)

        with pytest.raises(MemoryConflictError):
            machine.superstep([(0, mark), (1, mark)])
