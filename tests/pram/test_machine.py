"""Unit tests for the PRAM interpreter's scheduling and accounting."""

import pytest

from repro.pram.instructions import CostModel
from repro.pram.machine import PRAM
from repro.pram.memory import AccessPolicy
from repro.pram.scheduler import make_bursts


def charge(k):
    """A thunk charging exactly k ALU instructions."""

    def thunk(ctx):
        ctx.alu(k)

    return thunk


class TestSuperstepAccounting:
    def test_burst_time_is_max_within_burst(self):
        machine = PRAM(processors=2, cost_model=CostModel(fork=0))
        machine.superstep([(0, charge(3)), (1, charge(5))])
        assert machine.metrics.time == 5
        assert machine.metrics.work == 8

    def test_multiple_bursts(self):
        machine = PRAM(processors=2, cost_model=CostModel(fork=0))
        machine.superstep(
            [(0, charge(1)), (1, charge(2)), (2, charge(3)), (3, charge(4))]
        )
        # bursts: (0,1) max 2; (2,3) max 4
        assert machine.metrics.steps[0].bursts == 2
        assert machine.metrics.time == 6

    def test_fork_overhead_charged_per_burst(self):
        machine = PRAM(processors=1, cost_model=CostModel(fork=2))
        machine.superstep([(0, charge(1)), (1, charge(1))])
        assert machine.metrics.time == (1 + 2) * 2

    def test_overhead_suppressed(self):
        machine = PRAM(processors=1, cost_model=CostModel(fork=2))
        machine.superstep([(0, charge(1))], charge_overhead=False)
        assert machine.metrics.time == 1

    def test_empty_superstep_is_noop(self):
        machine = PRAM(processors=4)
        machine.superstep([])
        assert machine.metrics.supersteps == 0

    def test_rejects_bad_processors(self):
        with pytest.raises(ValueError):
            PRAM(processors=0)


class TestSynchrony:
    def test_writes_commit_at_barrier(self):
        machine = PRAM(processors=1)
        machine.memory.alloc("A", [1, 2])

        def swap0(ctx):
            ctx.write("A", 0, ctx.read("A", 1))

        def swap1(ctx):
            ctx.write("A", 1, ctx.read("A", 0))

        # even though processor 0's thunk runs first (P=1 bursts),
        # both read the pre-step state: a true synchronous swap
        machine.superstep([(0, swap0), (1, swap1)])
        assert machine.memory.snapshot("A") == [2, 1]

    def test_instruction_charges_per_primitive(self):
        cm = CostModel(load=2, store=3, alu=5, branch=7, fork=0)
        machine = PRAM(processors=1, cost_model=cm)
        machine.memory.alloc("A", [0])

        def thunk(ctx):
            v = ctx.read("A", 0)  # 2
            ctx.alu()  # 5
            ctx.branch()  # 7
            ctx.write("A", 0, ctx.compute(lambda x: x + 1, v, cost=11))  # 11 + 3

        machine.superstep([(0, thunk)])
        assert machine.metrics.time == 2 + 5 + 7 + 11 + 3

    def test_metrics_describe(self):
        machine = PRAM(processors=2)
        machine.superstep([(0, charge(1))])
        text = machine.metrics.describe()
        assert "P=2" in text and "time=" in text


class TestBursts:
    def test_make_bursts_splits(self):
        assert make_bursts([1, 2, 3, 4, 5], 2) == [[1, 2], [3, 4], [5]]

    def test_make_bursts_single(self):
        assert make_bursts([1, 2], 10) == [[1, 2]]

    def test_make_bursts_rejects_zero(self):
        with pytest.raises(ValueError):
            make_bursts([1], 0)


class TestEventTrace:
    def test_disabled_by_default(self):
        machine = PRAM(processors=1)
        machine.memory.alloc("A", [1])
        machine.superstep([(0, lambda ctx: ctx.read("A", 0))])
        assert machine.trace == []
        assert "disabled" in machine.render_trace()

    def test_records_reads_writes_computes(self):
        machine = PRAM(processors=2, record_trace=True)
        machine.memory.alloc("A", [1, 2])

        def thunk(ctx):
            v = ctx.read("A", 0)
            ctx.write("A", 1, ctx.compute(lambda x: x + 1, v))

        machine.superstep([(0, thunk)])
        assert machine.trace[0][0] == (0, "R", "A", 0)
        kinds = [e[1] for e in machine.trace[0]]
        assert kinds == ["R", "C", "W"]

    def test_one_event_list_per_superstep(self):
        machine = PRAM(record_trace=True)
        machine.memory.alloc("A", [0])
        for _ in range(3):
            machine.superstep([(0, lambda ctx: ctx.read("A", 0))])
        assert len(machine.trace) == 3

    def test_render_truncates(self):
        machine = PRAM(record_trace=True)
        machine.memory.alloc("A", [0])
        machine.superstep(
            [(p, lambda ctx: ctx.read("A", 0)) for p in range(10)]
        )
        text = machine.render_trace(max_events=3)
        assert "truncated" in text

    def test_render_mentions_arrays(self):
        machine = PRAM(record_trace=True)
        machine.memory.alloc("A", [0])
        machine.superstep([(0, lambda ctx: ctx.write("A", 0, 5))])
        assert "write A[0]" in machine.render_trace()
