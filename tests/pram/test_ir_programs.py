"""Tests for the PRAM IR programs and their instruction accounting."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import CONCAT, OrdinaryIRSystem, run_ordinary
from repro.core.moebius import Mat2, moebius_ir_operator
from repro.pram.instructions import DEFAULT_COST_MODEL, CostModel
from repro.pram.ir_programs import run_ordinary_on_pram, run_sequential_on_pram
from repro.pram.memory import AccessPolicy, MemoryConflictError
from repro.pram.vectorized import profile_ordinary, sequential_time

from ..conftest import ordinary_systems


def chain(n):
    return OrdinaryIRSystem.build(
        [(f"s{j}",) for j in range(n + 1)],
        list(range(1, n + 1)),
        list(range(n)),
        CONCAT,
    )


class TestSequentialProgram:
    def test_result_matches_reference(self):
        sys_ = chain(10)
        out, _metrics = run_sequential_on_pram(sys_)
        assert out == run_ordinary(sys_)

    def test_time_is_linear(self):
        sys_ = chain(10)
        _, metrics = run_sequential_on_pram(sys_)
        assert metrics.time == sequential_time(10, CONCAT.cost)
        assert metrics.supersteps == 10

    def test_custom_cost_model(self):
        cm = CostModel(load=3, store=2, alu=1, branch=1, fork=5)
        sys_ = chain(4)
        _, metrics = run_sequential_on_pram(sys_, cost_model=cm)
        assert metrics.time == 4 * cm.ordinary_seq_iter(CONCAT.cost)


class TestParallelProgram:
    @pytest.mark.parametrize("processors", [1, 2, 3, 8, 64])
    def test_result_matches_reference(self, processors):
        sys_ = chain(13)
        out, _ = run_ordinary_on_pram(sys_, processors=processors)
        assert out == run_ordinary(sys_)

    @pytest.mark.parametrize("processors", [1, 2, 5, 16])
    def test_interpreter_time_equals_analytic(self, processors):
        sys_ = chain(13)
        _, metrics = run_ordinary_on_pram(sys_, processors=processors)
        _, profile = profile_ordinary(sys_)
        assert metrics.time == profile.parallel_time(processors)
        assert metrics.work == profile.parallel_work()

    @given(ordinary_systems(max_n=14, max_extra=6))
    @settings(max_examples=25, deadline=None)
    def test_property_interpreter_equals_analytic(self, sys_):
        _, profile = profile_ordinary(sys_)
        for processors in (1, 3, 8):
            out, metrics = run_ordinary_on_pram(sys_, processors=processors)
            assert out == run_ordinary(sys_)
            assert metrics.time == profile.parallel_time(processors)

    def test_erew_detects_shared_predecessors(self):
        # three chains share the same predecessor cell -> concurrent
        # reads in the links/concat steps
        sys_ = OrdinaryIRSystem.build(
            [(c,) for c in "abcd"], [1, 2, 3], [0, 0, 0], CONCAT
        )
        with pytest.raises(MemoryConflictError):
            run_ordinary_on_pram(sys_, processors=4, policy=AccessPolicy.EREW)

    def test_erew_fine_when_truly_disjoint(self):
        # operand cells are disjoint from assigned cells and from each
        # other: every location is touched by exactly one processor
        sys_ = OrdinaryIRSystem.build(
            [(c,) for c in "abcdef"], [0, 1, 2], [3, 4, 5], CONCAT
        )
        out, _ = run_ordinary_on_pram(sys_, processors=8, policy=AccessPolicy.EREW)
        assert out == run_ordinary(sys_)

    def test_chains_are_crew_not_erew(self):
        # even a plain chain shares cells between an owner and its
        # successor's f-operand: EREW rejects, CREW accepts
        sys_ = chain(6)
        with pytest.raises(MemoryConflictError):
            run_ordinary_on_pram(sys_, processors=8, policy=AccessPolicy.EREW)
        out, _ = run_ordinary_on_pram(sys_, processors=8, policy=AccessPolicy.CREW)
        assert out == run_ordinary(sys_)

    def test_f_initial_array_used_at_terminals(self):
        sys_ = OrdinaryIRSystem.build(
            [("a",), ("b",), ("c",)], [1, 2], [0, 1], CONCAT
        )
        alt = [("A",), ("B",), ("C",)]
        out, _ = run_ordinary_on_pram(sys_, processors=2, f_initial=alt)
        assert out == [("a",), ("A", "b"), ("A", "b", "c")]

    def test_moebius_matrices_on_pram(self):
        # run the matrix monoid through the interpreter end to end
        op = moebius_ir_operator()
        coeff = [Mat2.affine(2, 1), Mat2.affine(3, 0), Mat2.affine(1, 5)]
        const = [Mat2.constant(v) for v in (7, 8, 9)]
        sys_ = OrdinaryIRSystem.build(coeff, [1, 2], [0, 1], op)
        out, _ = run_ordinary_on_pram(sys_, processors=2, f_initial=const)
        # X1 = 3*7 + 0 = 21 ; X2 = 1*21 + 5 = 26
        assert out[1].constant_value() == 21
        assert out[2].constant_value() == 26


class TestVectorizedProfile:
    def test_hand_computed_small_case(self):
        cm = DEFAULT_COST_MODEL
        sys_ = chain(4)  # single chain of 4, rounds = 2
        _, profile = profile_ordinary(sys_)
        assert profile.rounds == 2
        assert profile.active_per_round == [3, 2]
        p1 = profile.parallel_time(1)
        expect = (
            4 * (cm.ordinary_init_writer() + cm.fork)
            + 4 * (cm.ordinary_init_links(1) + cm.fork)
            + 3 * (cm.ordinary_concat(1) + cm.fork)
            + 2 * (cm.ordinary_concat(1) + cm.fork)
        )
        assert p1 == expect

    def test_parallel_time_decreases_with_processors(self):
        sys_ = chain(200)
        _, profile = profile_ordinary(sys_)
        times = [profile.parallel_time(p) for p in (1, 2, 4, 8, 16)]
        assert times == sorted(times, reverse=True)

    def test_work_independent_of_processors(self):
        sys_ = chain(50)
        _, profile = profile_ordinary(sys_)
        assert profile.parallel_work() == profile.parallel_work()

    def test_speedup_and_crossover(self):
        sys_ = chain(4096)
        _, profile = profile_ordinary(sys_)
        cross = profile.crossover_processors()
        assert cross is not None
        assert profile.speedup(cross) > 1.0
        assert profile.speedup(max(1, cross // 2)) <= 1.0

    def test_crossover_none_for_tiny_limit(self):
        sys_ = chain(4096)
        _, profile = profile_ordinary(sys_)
        assert profile.crossover_processors(limit=2) is None

    def test_sweep_rows(self):
        sys_ = chain(64)
        _, profile = profile_ordinary(sys_)
        rows = profile.sweep([1, 2, 4])
        assert [r["processors"] for r in rows] == [1, 2, 4]
        assert all(r["sequential_time"] == profile.sequential_time() for r in rows)
        assert rows[0]["speedup"] == pytest.approx(
            profile.sequential_time() / rows[0]["parallel_time"]
        )

    def test_rejects_bad_processors(self):
        sys_ = chain(4)
        _, profile = profile_ordinary(sys_)
        with pytest.raises(ValueError):
            profile.parallel_time(0)
