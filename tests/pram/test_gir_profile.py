"""Tests for the GIR cost profile."""

import pytest

from repro.core import GIRSystem, modular_mul, run_gir
from repro.pram import profile_gir


def fib_system(n):
    return GIRSystem.build(
        [2, 3] + [1] * n,
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        modular_mul(10**9 + 7),
    )


class TestGIRProfile:
    def test_result_is_the_real_solve(self):
        sys_ = fib_system(24)
        result, _profile = profile_gir(sys_)
        assert result == run_gir(sys_)

    def test_time_decreases_with_processors(self):
        _, profile = profile_gir(fib_system(64))
        times = [profile.parallel_time(p) for p in (1, 4, 16, 64, 256)]
        assert times == sorted(times, reverse=True)

    def test_sequential_flat_and_positive(self):
        _, profile = profile_gir(fib_system(32))
        assert profile.sequential_time() == 32 * 9

    def test_gir_needs_many_processors(self):
        """The honest GIR story: CAP does far more work than the
        sequential loop, so speedup > 1 needs a large P (the paper's
        O(n^2)-processor regime)."""
        _, profile = profile_gir(fib_system(64))
        assert profile.speedup(1) < 0.1
        big = profile.max_useful_processors()
        assert profile.speedup(big) > 1.0

    def test_rejects_bad_processors(self):
        _, profile = profile_gir(fib_system(8))
        with pytest.raises(ValueError):
            profile.parallel_time(0)

    def test_non_distinct_g_profiled_via_renaming(self):
        op = modular_mul(97)
        sys_ = GIRSystem.build([2, 3], [0, 0, 1], [1, 1, 0], [0, 1, 1], op)
        result, profile = profile_gir(sys_)
        assert result == run_gir(sys_)
        assert profile.n == sys_.n  # renamed system has one row per iteration

    def test_cap_work_recorded_per_iteration(self):
        _, profile = profile_gir(fib_system(32))
        assert len(profile.cap_work_per_iteration) >= 4
        assert all(w > 0 for w in profile.cap_work_per_iteration)


class TestTraceEvalOnPram:
    """The GIR evaluation stage as an interpreter program must match
    both the reference evaluator and the analytic profile charges."""

    def _check(self, sys_):
        import math

        from repro.core.gir import evaluate_trace_powers, trace_powers
        from repro.pram.instructions import DEFAULT_COST_MODEL
        from repro.pram.ir_programs import run_trace_eval_on_pram

        tables = trace_powers(sys_)
        expected = [
            evaluate_trace_powers(t, sys_.initial, sys_.op)[0] for t in tables
        ]
        _, profile = profile_gir(sys_)
        cm = DEFAULT_COST_MODEL
        fork = cm.superstep_overhead()
        for P in (1, 3, 16):
            vals, metrics = run_trace_eval_on_pram(
                tables, sys_.initial, sys_.op, processors=P
            )
            assert vals == expected

            def step(active, unit):
                return (
                    math.ceil(active / P) * (unit + fork) if active else 0
                )

            predicted = step(
                profile.power_stage_ops, cm.gir_power(sys_.op.cost)
            )
            for a in profile.combine_work_per_level:
                predicted += step(a, cm.gir_combine(sys_.op.cost))
            assert metrics.time == predicted, P

    def test_fibonacci_system(self):
        self._check(fib_system(24))

    def test_random_systems(self):
        import numpy as np

        from repro.core import GIRSystem
        from repro.core.operators import modular_add

        rng = np.random.default_rng(3)
        op = modular_add(97)
        for _ in range(5):
            n = int(rng.integers(1, 20))
            m = n + int(rng.integers(1, 8))
            sys_ = GIRSystem.build(
                rng.integers(0, 97, size=m).tolist(),
                rng.permutation(m)[:n],
                rng.integers(0, m, size=n),
                rng.integers(0, m, size=n),
                op,
            )
            self._check(sys_)

    def test_single_factor_traces_need_no_combines(self):
        from repro.core import GIRSystem
        from repro.core.operators import modular_add
        from repro.pram.ir_programs import run_trace_eval_on_pram

        op = modular_add(97)
        # A[1] = A[0] + A[0]: one trace, one factor (power 2)
        sys_ = GIRSystem.build([5, 0], [1], [0], [0], op)
        from repro.core.gir import trace_powers

        tables = trace_powers(sys_)
        vals, metrics = run_trace_eval_on_pram(tables, sys_.initial, op)
        assert vals == [10 % 97]
        assert metrics.supersteps == 1  # powers only, no combine levels


class TestFullGIROnPram:
    """The complete GIR pipeline as PRAM instruction streams."""

    def test_cap_program_matches_reference(self):
        from repro.core.cap import count_all_paths
        from repro.core.depgraph import build_dependence_graph
        from repro.pram.ir_programs import run_cap_on_pram

        sys_ = fib_system(20)
        graph = build_dependence_graph(sys_)
        for p in (1, 4, 32):
            edges, metrics = run_cap_on_pram(graph, processors=p)
            assert edges == count_all_paths(graph).powers
            assert metrics.supersteps == count_all_paths(graph).iterations

    def test_full_pipeline_matches_sequential(self):
        from repro.pram.ir_programs import run_gir_on_pram

        sys_ = fib_system(24)
        out, metrics = run_gir_on_pram(sys_, processors=8)
        assert out == run_gir(sys_)
        assert metrics.time > 0 and metrics.work >= metrics.time

    def test_random_systems_all_processor_counts(self):
        import numpy as np

        from repro.core import GIRSystem
        from repro.core.operators import modular_add
        from repro.pram.ir_programs import run_gir_on_pram

        rng = np.random.default_rng(7)
        op = modular_add(97)
        for _ in range(6):
            n = int(rng.integers(1, 16))
            m = n + int(rng.integers(1, 6))
            sys_ = GIRSystem.build(
                rng.integers(0, 97, size=m).tolist(),
                rng.permutation(m)[:n],
                rng.integers(0, m, size=n),
                rng.integers(0, m, size=n),
                op,
            )
            for p in (1, 3):
                out, _ = run_gir_on_pram(sys_, processors=p)
                assert out == run_gir(sys_)

    def test_non_commutative_rejected(self):
        from repro.core import CONCAT, GIRSystem
        from repro.core.operators import OperatorError
        from repro.pram.ir_programs import run_gir_on_pram

        sys_ = GIRSystem.build(
            [("a",), ("b",), ("c",)], [2], [0], [1], CONCAT
        )
        with pytest.raises(OperatorError):
            run_gir_on_pram(sys_)

    def test_more_processors_not_slower(self):
        from repro.pram.ir_programs import run_gir_on_pram

        sys_ = fib_system(20)
        _, m1 = run_gir_on_pram(sys_, processors=1)
        _, m8 = run_gir_on_pram(sys_, processors=8)
        _, m64 = run_gir_on_pram(sys_, processors=64)
        assert m1.time >= m8.time >= m64.time
        # work is processor-independent
        assert m1.work == m8.work == m64.work
