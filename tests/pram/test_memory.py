"""Unit tests for shared memory policies and synchronous commit."""

import pytest

from repro.pram.memory import AccessPolicy, MemoryConflictError, SharedMemory


def mem(policy):
    m = SharedMemory(policy=policy)
    m.alloc("A", [10, 20, 30])
    return m


class TestBasics:
    def test_alloc_copies(self):
        values = [1, 2]
        m = SharedMemory()
        m.alloc("A", values)
        values[0] = 99
        assert m.peek("A", 0) == 1

    def test_double_alloc_rejected(self):
        m = mem(AccessPolicy.CREW)
        with pytest.raises(ValueError, match="already allocated"):
            m.alloc("A", [1])

    def test_reads_see_prestep_state(self):
        m = mem(AccessPolicy.CREW)
        m.write(0, "A", 0, 99)
        assert m.read(1, "A", 0) == 10  # staged write not visible
        m.commit()
        assert m.peek("A", 0) == 99

    def test_snapshot_is_a_copy(self):
        m = mem(AccessPolicy.CREW)
        snap = m.snapshot("A")
        snap[0] = -1
        assert m.peek("A", 0) == 10


class TestEREW:
    def test_concurrent_read_rejected(self):
        m = mem(AccessPolicy.EREW)
        m.read(0, "A", 1)
        m.read(1, "A", 1)
        with pytest.raises(MemoryConflictError, match="EREW violation"):
            m.commit()

    def test_same_processor_rereads_ok(self):
        m = mem(AccessPolicy.EREW)
        m.read(0, "A", 1)
        m.read(0, "A", 1)
        m.commit()

    def test_concurrent_write_rejected(self):
        m = mem(AccessPolicy.EREW)
        m.write(0, "A", 2, 1)
        m.write(1, "A", 2, 1)
        with pytest.raises(MemoryConflictError):
            m.commit()


class TestCREW:
    def test_concurrent_reads_allowed(self):
        m = mem(AccessPolicy.CREW)
        m.read(0, "A", 1)
        m.read(1, "A", 1)
        m.commit()

    def test_concurrent_writes_rejected(self):
        m = mem(AccessPolicy.CREW)
        m.write(0, "A", 0, 1)
        m.write(1, "A", 0, 2)
        with pytest.raises(MemoryConflictError, match="CREW violation"):
            m.commit()

    def test_distinct_cells_fine(self):
        m = mem(AccessPolicy.CREW)
        m.write(0, "A", 0, 1)
        m.write(1, "A", 1, 2)
        m.commit()
        assert m.snapshot("A") == [1, 2, 30]


class TestCRCW:
    def test_common_same_value_ok(self):
        m = mem(AccessPolicy.CRCW_COMMON)
        m.write(0, "A", 0, 7)
        m.write(1, "A", 0, 7)
        m.commit()
        assert m.peek("A", 0) == 7

    def test_common_divergent_rejected(self):
        m = mem(AccessPolicy.CRCW_COMMON)
        m.write(0, "A", 0, 7)
        m.write(1, "A", 0, 8)
        with pytest.raises(MemoryConflictError, match="divergent"):
            m.commit()

    def test_arbitrary_takes_first_issued(self):
        m = mem(AccessPolicy.CRCW_ARBITRARY)
        m.write(3, "A", 0, 33)
        m.write(1, "A", 0, 11)
        m.commit()
        assert m.peek("A", 0) == 33

    def test_priority_lowest_processor_wins(self):
        m = mem(AccessPolicy.CRCW_PRIORITY)
        m.write(3, "A", 0, 33)
        m.write(1, "A", 0, 11)
        m.write(2, "A", 0, 22)
        m.commit()
        assert m.peek("A", 0) == 11


class TestPolicyFlags:
    def test_flags(self):
        assert not AccessPolicy.EREW.allows_concurrent_reads
        assert AccessPolicy.CREW.allows_concurrent_reads
        assert not AccessPolicy.CREW.allows_concurrent_writes
        assert AccessPolicy.CRCW_PRIORITY.allows_concurrent_writes
