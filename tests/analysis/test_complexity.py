"""Tests for the analytic complexity models."""

import math

import pytest

from repro.analysis.complexity import (
    fit_parallel_constant,
    loglog_slope,
    model_crossover,
    model_parallel_time,
)


class TestModel:
    def test_parallel_time_formula(self):
        assert model_parallel_time(1024, 1) == 1024 * 10
        assert model_parallel_time(1024, 16) == 64 * 10
        assert model_parallel_time(1000, 16, c_par=2.0) == 2.0 * 63 * 10

    def test_tiny_n(self):
        assert model_parallel_time(1, 4) == 1.0

    def test_crossover(self):
        # T_par < T_seq  <=>  P > (c_par/c_seq) log2 n
        assert model_crossover(1 << 16, 2.0, 1.0) == pytest.approx(32.0)
        assert model_crossover(1, 2.0, 1.0) == 1.0


class TestFits:
    def test_slope_of_ideal_scaling_is_minus_one(self):
        ps = [1, 2, 4, 8, 16, 32]
        ts = [1000.0 / p for p in ps]
        assert loglog_slope(ps, ts) == pytest.approx(-1.0)

    def test_slope_of_flat_series_is_zero(self):
        ps = [1, 2, 4, 8]
        assert loglog_slope(ps, [7.0] * 4) == pytest.approx(0.0)

    def test_slope_needs_two_points(self):
        with pytest.raises(ValueError):
            loglog_slope([1], [1.0])

    def test_fit_constant_recovers_c(self):
        n = 4096
        ps = [1, 4, 16, 64]
        ts = [3.5 * model_parallel_time(n, p) for p in ps]
        assert fit_parallel_constant(n, ps, ts) == pytest.approx(3.5)
