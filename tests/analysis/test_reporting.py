"""Tests for report rendering."""

from repro.analysis.reporting import ascii_table, banner, series_table


class TestAsciiTable:
    def test_alignment(self):
        text = ascii_table(
            ["name", "value"], [["a", 1], ["long-name", 22]], align_right=[1]
        )
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert lines[2].endswith(" 1")
        assert lines[3].endswith("22")

    def test_empty_rows(self):
        text = ascii_table(["a", "b"], [])
        assert "a" in text and "-" in text

    def test_header_width_respected(self):
        text = ascii_table(["wide-header"], [["x"]])
        assert text.splitlines()[1] == "-" * len("wide-header")


class TestSeriesTable:
    def test_columns(self):
        text = series_table(
            "P", [1, 2], {"par": [10.0, 5.0], "seq": [8, 8]}
        )
        lines = text.splitlines()
        assert "P" in lines[0] and "par" in lines[0] and "seq" in lines[0]
        assert "10.000" in lines[2]
        assert lines[3].split()[0] == "2"

    def test_int_series_not_float_formatted(self):
        text = series_table("P", [1], {"count": [42]})
        assert "42" in text and "42.000" not in text


class TestBanner:
    def test_contains_title(self):
        text = banner("Fig 3")
        assert "Fig 3" in text
        assert text.count("=") >= 100
