"""Historical per-family solver signatures for the test suite.

The ``repro.core.{solve_ordinary,solve_gir,solve_moebius,...}`` shims
were removed in repro 1.2.0; the engine front door
(:func:`repro.engine.solve`) is the only public entry point.  Many
tests, however, exercise the *algorithms* rather than the API surface,
and predate the engine -- rewriting hundreds of call sites would churn
them for no coverage gain.  This module re-creates the old signatures
as thin delegations onto the engine, with the exact semantics the
shims had:

* ``solve_ordinary`` / ``solve_ordinary_numpy`` pin the python/numpy
  backend respectively;
* ``solve_gir`` runs the numpy backend with the historical
  rename/dispatch knobs;
* ``solve_moebius`` maps the historical ``engine=`` names onto the
  engine's backend + ``options={"path": ...}``;
* ``solve_affine_numpy`` / ``solve_rational_numpy`` call the fast-path
  executors *directly* (plan-cached, never the guard's degradation
  ladder) -- their historical bit-level contract.

All return ``(values, stats)`` tuples like the originals.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.engine import solve as engine_solve

__all__ = [
    "solve_ordinary",
    "solve_ordinary_numpy",
    "solve_gir",
    "solve_moebius",
    "solve_affine_numpy",
    "solve_rational_numpy",
]


def solve_ordinary(
    system,
    *,
    collect_stats: bool = False,
    max_rounds: Optional[int] = None,
    f_initial: Optional[List[Any]] = None,
    policy=None,
    checked: bool = False,
    check_sample: Optional[int] = 64,
) -> Tuple[List[Any], Any]:
    result = engine_solve(
        system,
        backend="python",
        collect_stats=collect_stats,
        max_rounds=max_rounds,
        f_initial=f_initial,
        policy=policy,
        checked=checked,
        check_sample=check_sample,
    )
    return result.values, result.stats


def solve_ordinary_numpy(
    system,
    *,
    collect_stats: bool = False,
    f_initial: Optional[List[Any]] = None,
    policy=None,
    checked: bool = False,
    check_sample: Optional[int] = 64,
) -> Tuple[List[Any], Any]:
    result = engine_solve(
        system,
        backend="numpy",
        collect_stats=collect_stats,
        f_initial=f_initial,
        policy=policy,
        checked=checked,
        check_sample=check_sample,
    )
    return result.values, result.stats


def solve_gir(
    system,
    *,
    collect_stats: bool = False,
    allow_rename: bool = True,
    allow_ordinary_dispatch: bool = True,
    policy=None,
    checked: bool = False,
    check_sample: Optional[int] = 64,
) -> Tuple[List[Any], Any]:
    result = engine_solve(
        system,
        backend="numpy",
        collect_stats=collect_stats,
        allow_rename=allow_rename,
        allow_ordinary_dispatch=allow_ordinary_dispatch,
        policy=policy,
        checked=checked,
        check_sample=check_sample,
    )
    return result.values, result.stats


def solve_moebius(
    rec,
    *,
    collect_stats: bool = False,
    engine: str = "auto",
    guard: Any = "auto",
    policy=None,
    checked: bool = False,
    check_sample: Optional[int] = 64,
) -> Tuple[List[Any], Any]:
    backend = "python" if engine == "python" else "numpy"
    path = {"auto": "auto", "numpy": "object", "python": "object"}.get(
        engine, engine
    )
    result = engine_solve(
        rec,
        backend=backend,
        collect_stats=collect_stats,
        policy=policy,
        checked=checked,
        check_sample=check_sample,
        options={"path": path, "guard": guard},
    )
    return result.values, result.stats


def _cached_moebius_plan(rec):
    """Fetch (or build and cache) the shared pointer-jumping plan."""
    from repro.engine.exec_moebius import build_plan
    from repro.engine.planner import get_plan_cache
    from repro.engine.problem import Problem

    problem = Problem.from_system(rec)
    cache = get_plan_cache()
    plan = cache.get(problem.fingerprint(), family="moebius")
    if plan is None:
        rec.validate()
        plan = build_plan(rec, problem.fingerprint())
        cache.put(problem.fingerprint(), plan)
    return plan


def solve_affine_numpy(
    rec,
    *,
    collect_stats: bool = False,
    guard=None,
    policy=None,
) -> Tuple[List[Any], Any]:
    from repro.engine.exec_moebius import execute_affine

    plan = _cached_moebius_plan(rec)
    return execute_affine(
        rec, plan, collect_stats=collect_stats, guard=guard, policy=policy
    )


def solve_rational_numpy(
    rec,
    *,
    collect_stats: bool = False,
    guard=None,
    policy=None,
) -> Tuple[List[Any], Any]:
    from repro.engine.exec_moebius import execute_rational

    plan = _cached_moebius_plan(rec)
    return execute_rational(
        rec, plan, collect_stats=collect_stats, guard=guard, policy=policy
    )
