"""End-to-end HTTP tests for ``repro.serve``: registration, solving,
coalescing over the wire, admission control, error mapping, and the
metrics/stats/health surfaces."""

import concurrent.futures
import json

import pytest

from repro.core.moebius import AffineRecurrence
from repro.core.serialize import system_to_dict
from repro.engine import EngineOptions
from repro.serve import ServeClient, ServeConfig, ServeError, ServeRejected

from .conftest import running_server


def affine(n=16, a=2.0, b=1.0):
    return AffineRecurrence.build(
        [1.0] * (n + 1),
        g=list(range(1, n + 1)),
        f=list(range(0, n)),
        a=[a] * n,
        b=[b] * n,
    )


def oracle(rec, values):
    out = list(values)
    for i in range(rec.n):
        out[int(rec.g[i])] = rec.a[i] * out[int(rec.f[i])] + rec.b[i]
    return out


@pytest.fixture(scope="module")
def server():
    rec = affine()
    with running_server(
        register=[(rec, EngineOptions(backend="numpy"))]
    ) as running:
        running.rec = rec
        running.fingerprint = next(iter(running.server._by_fingerprint))
        yield running


@pytest.fixture
def client(server):
    with ServeClient(server.host, server.port) as c:
        yield c


class TestLifecycle:
    def test_health(self, server, client):
        doc = client.health()
        assert doc["ok"] is True

    def test_register_over_http(self, server, client):
        rec = affine(8, a=3.0)
        doc = client.register(
            system_to_dict(rec), options={"backend": "numpy"}
        )
        assert doc["family"] == "moebius"
        assert doc["backend"] == "numpy"
        assert doc["batch_capable"] is True
        assert doc["n"] == 9
        # registering the same problem again is idempotent
        again = client.register(
            system_to_dict(rec), options={"backend": "numpy"}
        )
        assert again["fingerprint"] == doc["fingerprint"]

    def test_register_unknown_option_key_is_400(self, server, client):
        with pytest.raises(ServeError) as exc:
            client.register(
                system_to_dict(affine(4)), options={"bogus": 1}
            )
        assert exc.value.status == 400
        assert "bogus" in str(exc.value)
        assert "backend" in str(exc.value)  # names the valid set

    def test_unknown_route_is_404(self, server, client):
        with pytest.raises(ServeError) as exc:
            client._request("GET", "/v1/nope")
        assert exc.value.status == 404


class TestSolve:
    def test_solve_is_oracle_exact(self, server, client):
        values = [float(i) for i in range(17)]
        doc = client.solve(server.fingerprint, values=values)
        assert doc["values"] == oracle(server.rec, values)
        assert doc["family"] == "moebius"
        assert doc["backend"] == "numpy"
        assert doc["latency_s"] >= 0.0

    def test_solve_base_values(self, server, client):
        doc = client.solve(server.fingerprint)
        assert doc["values"] == oracle(server.rec, [1.0] * 17)

    def test_patch_and_digest_reply(self, server, client):
        patched = [1.0] * 17
        patched[0] = 5.0
        full = client.solve(server.fingerprint, values=patched)
        sparse = client.solve(
            server.fingerprint, patch={0: 5.0}, reply="digest"
        )
        assert "values" not in sparse
        assert sparse["n"] == 17
        ref = client.solve(
            server.fingerprint, values=patched, reply="digest"
        )
        assert sparse["digest"] == ref["digest"]
        for idx, val in sparse["sample"]:
            assert full["values"][idx] == val

    def test_values_and_patch_together_is_400(self, server, client):
        with pytest.raises(ServeError) as exc:
            client._request(
                "POST",
                "/v1/solve",
                {
                    "fingerprint": server.fingerprint,
                    "values": [1.0] * 17,
                    "patch": {"0": 2.0},
                },
            )
        assert exc.value.status == 400
        assert "not both" in str(exc.value)

    def test_unregistered_fingerprint_is_404(self, server, client):
        with pytest.raises(ServeError) as exc:
            client.solve("f" * 32, values=[1.0] * 17)
        assert exc.value.status == 404

    def test_bad_patch_index_is_400(self, server, client):
        with pytest.raises(ServeError) as exc:
            client.solve(server.fingerprint, patch={99: 1.0})
        assert exc.value.status == 400
        assert "patch index" in str(exc.value)

    def test_malformed_json_is_400(self, server, client):
        with pytest.raises(ServeError) as exc:
            client._request("POST", "/v1/solve", raw=b"{nope")
        assert exc.value.status == 400


class TestCoalescingOverHttp:
    def test_concurrent_requests_coalesce(self, server):
        values = [2.0] * 17
        expected = oracle(server.rec, values)

        def one(i):
            with ServeClient(server.host, server.port) as c:
                return c.solve(
                    server.fingerprint, values=values, request_id=f"q{i}"
                )

        with concurrent.futures.ThreadPoolExecutor(16) as pool:
            docs = list(pool.map(one, range(16)))
        assert all(doc["values"] == expected for doc in docs)
        assert {doc["request_id"] for doc in docs} == {
            f"q{i}" for i in range(16)
        }
        # at least some of a 16-wide burst must share a window
        assert any(doc["coalesced"] for doc in docs)
        assert all(doc["queue_wait_s"] >= 0.0 for doc in docs)


class TestAdmissionControl:
    def test_tenant_quota_rejects_with_429(self):
        rec = affine(8)
        config = ServeConfig(
            port=0, tenant_quota=1, window_ms=200.0
        )
        with running_server(
            config, register=[(rec, EngineOptions(backend="numpy"))]
        ) as running:
            fp = next(iter(running.server._by_fingerprint))

            def one(i):
                with ServeClient(running.host, running.port) as c:
                    try:
                        return c.solve(
                            fp, values=[float(i)] * 9, tenant="bob"
                        )
                    except ServeRejected as exc:
                        return exc

            # the long gather window holds the first request in flight
            # while the rest of the burst arrives
            with concurrent.futures.ThreadPoolExecutor(6) as pool:
                outcomes = list(pool.map(one, range(6)))
            rejected = [
                o for o in outcomes if isinstance(o, ServeRejected)
            ]
            served = [o for o in outcomes if isinstance(o, dict)]
            assert rejected, "quota of 1 must reject part of a 6-burst"
            assert served, "quota must not starve the tenant entirely"
            assert all(o.status == 429 for o in rejected)
            assert all(o.reason == "quota" for o in rejected)

    def test_infeasible_deadline_rejected_up_front(self):
        rec = affine(8)
        config = ServeConfig(port=0, window_ms=100.0)
        with running_server(
            config, register=[(rec, EngineOptions(backend="numpy"))]
        ) as running:
            fp = next(iter(running.server._by_fingerprint))
            with ServeClient(running.host, running.port) as c:
                # deadline far below the 100ms gather window: admission
                # control rejects before queueing
                with pytest.raises(ServeRejected) as exc:
                    c.solve(fp, values=[1.0] * 9, deadline_s=0.001)
                assert exc.value.status == 503
                assert exc.value.reason == "deadline"
                # a feasible deadline sails through
                doc = c.solve(fp, values=[1.0] * 9, deadline_s=30.0)
                assert doc["values"] == oracle(rec, [1.0] * 9)


class TestObservability:
    def test_metrics_exposition(self, server, client):
        client.solve(server.fingerprint, values=[3.0] * 17)
        text = client.metrics_text()
        assert "serve_request_latency_s" in text
        assert "serve_coalesce_width" in text

    def test_stats_surface(self, server, client):
        client.solve(server.fingerprint, values=[4.0] * 17)
        doc = client.stats()
        assert doc["pool"]["sessions"] >= 1
        lanes = doc["lanes"]
        assert any(
            lane["fingerprint"] == server.fingerprint[:12]
            for lane in lanes
        )
        assert doc["config"]["max_pending"] >= 1


class TestClientRawHelpers:
    def test_request_supports_raw_bodies(self, server, client):
        # the raw= escape hatch used above must bypass JSON encoding
        doc = client._request(
            "POST",
            "/v1/solve",
            raw=json.dumps(
                {"fingerprint": server.fingerprint, "values": [1.0] * 17}
            ).encode(),
        )
        assert doc["values"] == oracle(server.rec, [1.0] * 17)
