"""Coalescing correctness: a coalesced ``(k, n)`` fan-out must be
bit-identical to ``k`` independent ``Session.solve`` calls -- through
the stacked sweep, through a mid-batch failover reroute, and through a
per-row policy ``partial`` outcome."""

import asyncio

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.equations import OrdinaryIRSystem
from repro.core.moebius import AffineRecurrence
from repro.core.operators import FLOAT_ADD
from repro.engine import (
    EngineOptions,
    Session,
    get_backend,
    register_backend,
)
from repro.engine.backends import Backend, BackendCapabilities, _REGISTRY
from repro.errors import FaultError
from repro.serve.coalescer import CoalesceLane, split_serve_policy
from repro.resilience import SolvePolicy


def affine_chain(n, a, b, m=None):
    m = m or (n + 1)
    return AffineRecurrence.build(
        [0.0] * m,
        g=list(range(1, n + 1)),
        f=list(range(0, n)),
        a=list(a),
        b=list(b),
    )


async def _fan_out(lane, payloads):
    futures = [
        lane.submit(values=row, patch=None, request_id=str(i))
        for i, row in enumerate(payloads)
    ]
    return await asyncio.gather(*futures)


def coalesce(session, payloads, *, window_s=0.001, options=None):
    """Push every payload into one gather window and collect results."""
    lane = CoalesceLane(
        session,
        options=options or session.options,
        base_values=list(session._source.initial),
        window_s=window_s,
    )
    return asyncio.run(_fan_out(lane, payloads))


finite = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-100.0, max_value=100.0
)


class TestBitIdentity:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_coalesced_affine_matches_independent_solves(self, data):
        n = data.draw(st.integers(min_value=1, max_value=10))
        a = data.draw(
            st.lists(finite, min_size=n, max_size=n).map(
                lambda xs: [x if x else 1.0 for x in xs]
            )
        )
        b = data.draw(st.lists(finite, min_size=n, max_size=n))
        rec = affine_chain(n, a, b)
        # a small payload pool drawn with replacement: exercises both
        # dedup (repeats) and stacking (distinct rows)
        pool_size = data.draw(st.integers(min_value=1, max_value=3))
        pool = [
            data.draw(
                st.lists(finite, min_size=n + 1, max_size=n + 1)
            )
            for _ in range(pool_size)
        ]
        k = data.draw(st.integers(min_value=1, max_value=6))
        payloads = [
            pool[data.draw(st.integers(0, pool_size - 1))] for _ in range(k)
        ]

        session = Session(rec, options=EngineOptions(backend="numpy"))
        results = coalesce(session, payloads)

        oracle = Session(rec, options=EngineOptions(backend="numpy"))
        for row, result in zip(payloads, results):
            expected = oracle.solve(row)
            assert result.values == expected.values
            assert result.backend == expected.backend
            assert result.family == "moebius"

    @settings(max_examples=15, deadline=None)
    @given(data=st.data())
    def test_coalesced_ordinary_matches_independent_solves(self, data):
        n = data.draw(st.integers(min_value=1, max_value=8))
        system = OrdinaryIRSystem.build(
            [0.0] * (n + 1),
            list(range(1, n + 1)),
            [data.draw(st.integers(0, i)) for i in range(n)],
            FLOAT_ADD,
        )
        k = data.draw(st.integers(min_value=2, max_value=5))
        payloads = [
            data.draw(st.lists(finite, min_size=n + 1, max_size=n + 1))
            for _ in range(k)
        ]
        session = Session(system, options=EngineOptions(backend="numpy"))
        results = coalesce(session, payloads)
        oracle = Session(system, options=EngineOptions(backend="numpy"))
        for row, result in zip(payloads, results):
            assert result.values == oracle.solve(row).values

    def test_envelope_fields_set(self):
        rec = affine_chain(4, [1.0] * 4, [1.0] * 4)
        session = Session(rec, options=EngineOptions(backend="numpy"))
        results = coalesce(
            session, [[float(i)] * 5 for i in range(3)]
        )
        for i, result in enumerate(results):
            assert result.request_id == str(i)
            assert result.coalesced is True
            assert result.queue_wait_s >= 0.0
        solo = coalesce(session, [[1.0] * 5])
        assert solo[0].coalesced is False


class _BatchPoisonedBackend(Backend):
    """Delegates single solves to numpy but faults every batch --
    the mid-batch failover shape: the stacked sweep dies, per-row
    service must take over."""

    name = "test-batch-poison"

    def __init__(self):
        self._numpy = get_backend("numpy")
        self.capabilities = BackendCapabilities(
            families=self._numpy.capabilities.families,
            exact=False,
            batch=True,
        )
        self.batch_calls = 0

    def execute(self, request):
        return self._numpy.execute(request)

    def execute_batch(self, request, batch_initial, f_initial_batch=None):
        self.batch_calls += 1
        raise FaultError("stacked sweep lost its worker mid-batch")


@pytest.fixture
def poisoned_backend():
    backend = _BatchPoisonedBackend()
    register_backend(backend, overwrite=True)
    try:
        yield backend
    finally:
        _REGISTRY.pop(backend.name, None)


class TestMidBatchReroute:
    def test_reroute_to_per_row_is_bit_identical(self, poisoned_backend):
        rec = affine_chain(6, [1.5] * 6, [0.25] * 6)
        session = Session(
            rec, options=EngineOptions(backend=poisoned_backend.name)
        )
        payloads = [[float(i)] * 7 for i in range(4)]
        results = coalesce(session, payloads)
        assert poisoned_backend.batch_calls == 1  # the batch was tried
        oracle = Session(rec, options=EngineOptions(backend="numpy"))
        for row, result in zip(payloads, results):
            assert result.values == oracle.solve(row).values
        # per-row service still coalesced from the caller's view
        assert all(r.coalesced for r in results)


class TestPerRowPolicy:
    def test_partial_policy_matches_independent_solves(self):
        # a round budget with `partial` semantics is an
        # execution-semantics policy: it must stay on the session and
        # force the per-row path (never shared across a stacked sweep)
        n = 64
        policy = SolvePolicy(max_rounds=1, on_exhaustion="partial")
        opts = EngineOptions(backend="numpy", policy=policy)
        rec = affine_chain(n, [1.0] * n, [1.0] * n)
        engine_opts, deadline = split_serve_policy(opts)
        assert deadline is None  # round budgets are not deadlines
        assert engine_opts.policy is policy

        session = Session(rec, options=engine_opts)
        lane_payloads = [[float(i % 3)] * (n + 1) for i in range(5)]
        results = coalesce(session, lane_payloads)

        oracle = Session(rec, options=engine_opts)
        for row, result in zip(lane_payloads, results):
            expected = oracle.solve(row)
            # the partial outcome (one round of doubling, then stop)
            # must match row-for-row, bit-for-bit
            assert result.values == expected.values

    def test_pure_timeout_policy_is_stripped_for_stacking(self):
        opts = EngineOptions(
            backend="numpy", policy=SolvePolicy(timeout_s=5.0)
        )
        engine_opts, deadline = split_serve_policy(opts)
        assert deadline == 5.0
        assert engine_opts.policy is None

        rec = affine_chain(4, [1.0] * 4, [1.0] * 4)
        session = Session(rec, options=engine_opts)
        lane = CoalesceLane(
            session,
            options=engine_opts,
            base_values=list(rec.initial),
            deadline_s=deadline,
        )
        assert lane.batchable
