"""Shared harness: run a RecurrenceServer on a background event loop."""

import asyncio
import contextlib
import threading

import pytest

from repro import obs
from repro.serve import RecurrenceServer, ServeConfig


class RunningServer:
    def __init__(self, server: RecurrenceServer, host: str, port: int):
        self.server = server
        self.host = host
        self.port = port


@contextlib.contextmanager
def running_server(config: ServeConfig = None, *, register=()):
    """Start a server (port 0) on a daemon-thread event loop; yields
    the server plus its bound host/port.

    ``register`` is a list of ``(system, options)`` pairs pinned
    before the listener opens.  ``asyncio.start_server`` serves as
    soon as it returns, so no ``serve_forever`` task is needed.
    """
    obs_was_enabled = obs.is_enabled()
    server = RecurrenceServer(config or ServeConfig(port=0))
    for system, options in register:
        server.register(system, options=options)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=_loop_main, args=(loop,), daemon=True)
    thread.start()
    host, port = asyncio.run_coroutine_threadsafe(
        server.start(), loop
    ).result(timeout=10)
    try:
        yield RunningServer(server, host, port)
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(
            timeout=10
        )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()
        # RecurrenceServer.__init__ installs a process-wide metrics
        # registry; leave global observation the way we found it so
        # later test modules see a clean slate.
        if not obs_was_enabled:
            obs.disable()


def _loop_main(loop):
    asyncio.set_event_loop(loop)
    loop.run_forever()


@pytest.fixture
def serve_factory():
    return running_server
