"""Unit tests for the loop AST and its interpreter."""

import pytest

from repro.core import ADD
from repro.loops.ast import (
    AffineIndex,
    Assign,
    BinOp,
    Const,
    Loop,
    OpApply,
    Ref,
    TableIndex,
    array_names,
    evaluate_expr,
    evaluate_loop,
)


class TestIndexFns:
    def test_affine_at_and_materialize(self):
        idx = AffineIndex(7, 2)
        assert idx.at(3) == 23
        assert idx.materialize(3).tolist() == [2, 9, 16]

    def test_affine_repr(self):
        assert repr(AffineIndex()) == "i"
        assert repr(AffineIndex(1, -1)) == "i-1"
        assert repr(AffineIndex(7, 2)) == "7*i+2"

    def test_table_at_and_materialize(self):
        idx = TableIndex([5, 3, 1])
        assert idx.at(1) == 3
        assert idx.materialize(2).tolist() == [5, 3]

    def test_table_too_short_rejected(self):
        with pytest.raises(ValueError, match="need"):
            TableIndex([1]).materialize(5)

    def test_table_hashable_and_equal(self):
        assert TableIndex([1, 2]) == TableIndex([1, 2])
        assert hash(TableIndex([1, 2])) == hash(TableIndex([1, 2]))


class TestExpressions:
    def test_binop_validates_operator(self):
        with pytest.raises(ValueError, match="unsupported arithmetic"):
            BinOp("%", Const(1), Const(2))

    def test_evaluate_arith(self):
        env = {"x": [2.0, 4.0], "y": [10.0, 20.0]}
        e = BinOp("/", Ref("y", AffineIndex()), Ref("x", AffineIndex()))
        assert evaluate_expr(e, 1, env) == 5.0

    def test_evaluate_opapply(self):
        env = {"a": [1, 2], "b": [10, 20]}
        e = OpApply(ADD, Ref("a", AffineIndex()), Ref("b", AffineIndex()))
        assert evaluate_expr(e, 0, env) == 11

    def test_evaluate_const(self):
        assert evaluate_expr(Const(3.5), 0, {}) == 3.5

    def test_array_names(self):
        e = BinOp(
            "+",
            Ref("a", AffineIndex()),
            OpApply(ADD, Ref("b", AffineIndex()), Const(1)),
        )
        assert array_names(e) == {"a", "b"}

    def test_reprs_readable(self):
        e = BinOp("*", Ref("a", AffineIndex()), Const(2))
        assert repr(e) == "(a[i] * 2)"


class TestLoopInterpreter:
    def test_simple_prefix_loop(self):
        loop = Loop(
            3,
            Assign(
                Ref("x", AffineIndex(1, 1)),
                BinOp("+", Ref("x", AffineIndex()), Ref("y", AffineIndex(1, 1))),
            ),
        )
        env = {"x": [1.0, 0.0, 0.0, 0.0], "y": [0.0, 1.0, 2.0, 3.0]}
        out = evaluate_loop(loop, env)
        assert out["x"] == [1.0, 2.0, 4.0, 7.0]
        assert env["x"] == [1.0, 0.0, 0.0, 0.0]  # input untouched

    def test_repr(self):
        loop = Loop(2, Assign(Ref("x", AffineIndex()), Const(0)))
        assert "for i in range(2)" in repr(loop)
