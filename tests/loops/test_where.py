"""Tests for guarded expressions (Where) in the loop front end."""

import numpy as np
import pytest

from repro.core import IRClass
from repro.loops import (
    AffineIndex,
    Assign,
    BinOp,
    Compare,
    Const,
    Loop,
    Ref,
    Where,
    evaluate_compare,
    evaluate_expr,
    evaluate_loop,
    parallelize,
    recognize,
)

I = AffineIndex()


class TestAst:
    def test_compare_validates_operator(self):
        with pytest.raises(ValueError, match="comparison"):
            Compare("<>", Const(1), Const(2))

    @pytest.mark.parametrize(
        "op,expect", [("<", True), ("<=", True), (">", False), (">=", False),
                      ("==", False), ("!=", True)]
    )
    def test_compare_evaluation(self, op, expect):
        cond = Compare(op, Const(1), Const(2))
        assert evaluate_compare(cond, 0, {}) is expect

    def test_where_evaluation(self):
        expr = Where(
            Compare(">", Ref("s", I), Const(0.0)), Const("pos"), Const("neg")
        )
        assert evaluate_expr(expr, 0, {"s": [1.0]}) == "pos"
        assert evaluate_expr(expr, 0, {"s": [-1.0]}) == "neg"

    def test_where_repr(self):
        expr = Where(Compare("<", Const(1), Const(2)), Const(3), Const(4))
        assert "where(" in repr(expr)


class TestGuardedRecurrences:
    def guarded_loop(self, n):
        # x[i+1] = (a*x[i] + b)  if s[i] > 0.5  else  (x[i] - b)
        return Loop(
            n,
            Assign(
                Ref("x", AffineIndex(1, 1)),
                Where(
                    Compare(">", Ref("s", I), Const(0.5)),
                    BinOp("+", BinOp("*", Ref("a", I), Ref("x", I)), Ref("b", I)),
                    BinOp("-", Ref("x", I), Ref("b", I)),
                ),
            ),
        )

    def env(self, rng, n):
        return {
            "x": [1.0] * (n + 1),
            "s": rng.random(n).tolist(),
            "a": (0.5 * rng.normal(size=n)).tolist(),
            "b": rng.normal(size=n).tolist(),
        }

    def test_recognized_as_linear(self, rng):
        rec = recognize(self.guarded_loop(10))
        assert rec.ir_class is IRClass.LINEAR

    def test_parallelized_correctly(self, rng):
        n = 120
        loop = self.guarded_loop(n)
        env = self.env(rng, n)
        res = parallelize(loop, env)
        assert res.method == "moebius" and not res.fallback
        assert np.allclose(res.env["x"], evaluate_loop(loop, env)["x"])

    def test_guard_on_variable_falls_back(self):
        n = 20
        loop = Loop(
            n,
            Assign(
                Ref("x", AffineIndex(1, 1)),
                Where(
                    Compare(">", Ref("x", I), Const(0.0)),
                    BinOp("*", Ref("x", I), Const(0.5)),
                    BinOp("+", Ref("x", I), Const(1.0)),
                ),
            ),
        )
        rec = recognize(loop)
        assert rec.ir_class is IRClass.UNSUPPORTED
        assert "guard condition reads" in rec.notes
        env = {"x": [0.3] * (n + 1)}
        res = parallelize(loop, env)
        assert res.fallback
        assert np.allclose(res.env["x"], evaluate_loop(loop, env)["x"])

    def test_guarded_reduction_chain(self, rng):
        # q += (w[i] if s[i] > 0 else 0): a guarded scalar reduction
        n = 100
        c = AffineIndex(0, 0)
        loop = Loop(
            n,
            Assign(
                Ref("q", c),
                BinOp(
                    "+",
                    Ref("q", c),
                    Where(
                        Compare(">", Ref("s", I), Const(0.0)),
                        Ref("w", I),
                        Const(0.0),
                    ),
                ),
            ),
        )
        env = {
            "q": [0.0],
            "s": rng.normal(size=n).tolist(),
            "w": rng.normal(size=n).tolist(),
        }
        res = parallelize(loop, env)
        assert res.method == "moebius"
        assert res.env["q"][0] == pytest.approx(
            evaluate_loop(loop, env)["q"][0], rel=1e-9
        )

    def test_guarded_rational_branch(self):
        # a guard selecting between affine and reciprocal branches:
        # classified rational, solved via Moebius matrices
        n = 30
        loop = Loop(
            n,
            Assign(
                Ref("x", AffineIndex(1, 1)),
                Where(
                    Compare("==", Ref("k", I), Const(0)),
                    BinOp("+", Ref("x", I), Const(1.0)),
                    BinOp("/", Const(2.0), BinOp("+", Ref("x", I), Const(3.0))),
                ),
            ),
        )
        rec = recognize(loop)
        assert rec.ir_class is IRClass.MOEBIUS_RATIONAL
        env = {"x": [1.0] * (n + 1), "k": [i % 2 for i in range(n)]}
        res = parallelize(loop, env)
        assert res.method == "moebius"
        assert np.allclose(res.env["x"], evaluate_loop(loop, env)["x"])
