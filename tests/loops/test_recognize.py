"""Unit tests for the loop-shape recognizer."""

import pytest

from repro.core import ADD, CONCAT, IRClass
from repro.loops.ast import AffineIndex, Assign, BinOp, Const, Loop, OpApply, Ref, TableIndex
from repro.loops.recognize import recognize

I = AffineIndex()


def loop_of(target_idx, expr, n=10, target="X"):
    return Loop(n, Assign(Ref(target, target_idx), expr))


class TestNoRecurrence:
    def test_target_never_read(self):
        rec = recognize(loop_of(I, BinOp("*", Ref("Y", I), Ref("Z", I))))
        assert rec.ir_class is IRClass.NO_RECURRENCE
        assert not rec.own_reads

    def test_own_cell_read_distinct_g(self):
        rec = recognize(loop_of(I, BinOp("+", Ref("X", I), Ref("Y", I))))
        assert rec.ir_class is IRClass.NO_RECURRENCE
        assert rec.own_reads


class TestReductions:
    def test_scalar_accumulator_is_moebius(self):
        c = AffineIndex(0, 0)
        rec = recognize(
            loop_of(c, BinOp("+", Ref("X", c), Ref("Y", I)))
        )
        assert rec.ir_class is IRClass.MOEBIUS_AFFINE
        assert rec.f == c and rec.own_reads

    def test_scatter_chain_detected_via_table(self):
        g = TableIndex([0, 1, 0, 1, 0])
        rec = recognize(
            Loop(5, Assign(Ref("X", g), BinOp("+", Ref("X", g), Ref("Y", I))))
        )
        assert rec.ir_class is IRClass.MOEBIUS_AFFINE

    def test_rational_reduction(self):
        c = AffineIndex(0, 0)
        rec = recognize(
            loop_of(c, BinOp("/", Const(1.0), BinOp("+", Ref("X", c), Const(1.0))))
        )
        assert rec.ir_class is IRClass.MOEBIUS_RATIONAL

    def test_non_arithmetic_reduction_body_unsupported(self):
        c = AffineIndex(0, 0)
        # op applied to (own, own): not a fold, not arithmetic
        expr = BinOp("+", OpApply(ADD, Ref("X", c), Ref("X", c)), Const(1))
        rec = recognize(loop_of(c, expr))
        assert rec.ir_class is IRClass.UNSUPPORTED


class TestLinearAndMoebius:
    def test_classic_linear(self):
        rec = recognize(
            loop_of(
                AffineIndex(1, 1),
                BinOp("+", Ref("X", I), Ref("Y", AffineIndex(1, 1))),
            )
        )
        assert rec.ir_class is IRClass.LINEAR
        assert rec.f == I

    def test_strided_g_is_indexed_not_linear(self):
        rec = recognize(
            loop_of(
                AffineIndex(7, 8),
                BinOp("+", Ref("X", AffineIndex(7, 1)), Ref("Y", I)),
            )
        )
        assert rec.ir_class is IRClass.MOEBIUS_AFFINE

    def test_rational_when_read_in_denominator(self):
        rec = recognize(
            loop_of(
                AffineIndex(1, 1),
                BinOp("/", Const(1.0), BinOp("+", Ref("X", I), Const(3.0))),
            )
        )
        assert rec.ir_class is IRClass.MOEBIUS_RATIONAL

    def test_multiple_reads_same_index_still_moebius(self):
        num = BinOp("+", BinOp("*", Const(2.0), Ref("X", I)), Const(1.0))
        den = BinOp("+", Ref("X", I), Const(3.0))
        rec = recognize(loop_of(AffineIndex(1, 1), BinOp("/", num, den)))
        assert rec.ir_class is IRClass.MOEBIUS_RATIONAL

    def test_self_term_folded(self):
        g = TableIndex(list(range(1, 11)))
        f = TableIndex(list(range(10)))
        expr = BinOp(
            "+",
            Ref("X", g),
            BinOp("*", Ref("X", f), Ref("Z", I)),
        )
        rec = recognize(Loop(10, Assign(Ref("X", g), expr)))
        assert rec.ir_class is IRClass.MOEBIUS_AFFINE
        assert rec.own_reads

    def test_two_distinct_foreign_indices_unsupported(self):
        expr = BinOp(
            "+",
            BinOp("*", Ref("X", AffineIndex(1, -1)), Const(2.0)),
            Ref("X", AffineIndex(1, -2)),
        )
        rec = recognize(loop_of(AffineIndex(1, 0), expr, n=5))
        assert rec.ir_class is IRClass.UNSUPPORTED
        assert "2 distinct indices" in rec.notes


class TestOpApplyForms:
    def test_ordinary_own_second(self):
        g = TableIndex([3, 4, 5])
        f = TableIndex([0, 1, 2])
        rec = recognize(
            Loop(3, Assign(Ref("A", g), OpApply(CONCAT, Ref("A", f), Ref("A", g))))
        )
        assert rec.ir_class is IRClass.ORDINARY_IR
        assert not rec.swapped and rec.f == f

    def test_ordinary_own_first_swapped(self):
        g = TableIndex([3, 4, 5])
        f = TableIndex([0, 1, 2])
        rec = recognize(
            Loop(3, Assign(Ref("A", g), OpApply(CONCAT, Ref("A", g), Ref("A", f))))
        )
        assert rec.ir_class is IRClass.ORDINARY_IR
        assert rec.swapped

    def test_gir_two_foreign(self):
        g = TableIndex([3, 4, 5])
        rec = recognize(
            Loop(
                3,
                Assign(
                    Ref("A", g),
                    OpApply(ADD, Ref("A", TableIndex([0, 1, 2])), Ref("A", TableIndex([1, 2, 0]))),
                ),
            )
        )
        assert rec.ir_class is IRClass.GIR
        assert rec.h is not None

    def test_fold_reduction(self):
        c = AffineIndex(0, 0)
        rec = recognize(
            Loop(5, Assign(Ref("q", c), OpApply(ADD, Ref("q", c), Ref("y", I))))
        )
        assert rec.ir_class is IRClass.ORDINARY_IR
        assert rec.fold_operand is not None
        assert not rec.swapped

    def test_fold_swapped(self):
        c = AffineIndex(0, 0)
        rec = recognize(
            Loop(5, Assign(Ref("q", c), OpApply(CONCAT, Ref("y", I), Ref("q", c))))
        )
        assert rec.ir_class is IRClass.ORDINARY_IR
        assert rec.fold_operand is not None and rec.swapped

    def test_fold_operand_must_be_target_free(self):
        c = AffineIndex(0, 0)
        rec = recognize(
            Loop(
                5,
                Assign(
                    Ref("q", c),
                    OpApply(ADD, Ref("q", c), BinOp("+", Ref("q", AffineIndex(1, 1)), Const(1))),
                ),
            )
        )
        assert rec.ir_class is IRClass.UNSUPPORTED

    def test_gir_arithmetic_form(self):
        g = TableIndex([3, 4, 5])
        rec = recognize(
            Loop(
                3,
                Assign(
                    Ref("A", g),
                    BinOp("*", Ref("A", TableIndex([0, 1, 2])), Ref("A", TableIndex([1, 2, 0]))),
                ),
            )
        )
        assert rec.ir_class is IRClass.GIR
        assert rec.arith_op == "*"

    def test_describe_mentions_class(self):
        rec = recognize(loop_of(I, Const(1)))
        assert "no-recurrence" in rec.describe()
