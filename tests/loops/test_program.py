"""Tests for multi-statement loop programs."""

import numpy as np
import pytest

from repro.loops.ast import AffineIndex, Assign, BinOp, Const, Loop, Ref
from repro.loops.program import (
    LoopProgram,
    evaluate_program,
    parallelize_program,
)

I = AffineIndex()


def two_pass_program(n):
    """Livermore-19-shaped: a forward chain then an elementwise map."""
    forward = Loop(
        n - 1,
        Assign(
            Ref("st", AffineIndex(1, 1)),
            BinOp(
                "+",
                Ref("sa", I),
                BinOp("*", Ref("st", I), BinOp("-", Ref("sb", I), Const(1.0))),
            ),
        ),
    )
    emit = Loop(
        n - 1,
        Assign(
            Ref("b5", I),
            BinOp("+", Ref("sa", I), BinOp("*", Ref("st", I), Ref("sb", I))),
        ),
    )
    return LoopProgram([forward, emit])


class TestLoopProgram:
    def test_rejects_non_loops(self):
        with pytest.raises(TypeError, match="not a Loop"):
            LoopProgram([42])

    def test_len_and_iter(self):
        prog = two_pass_program(5)
        assert len(prog) == 2
        assert all(isinstance(l, Loop) for l in prog)


class TestParallelizeProgram:
    def env(self, rng, n):
        return {
            "st": [0.1] + [0.0] * (n - 1),
            "sa": rng.normal(size=n).tolist(),
            "sb": (rng.normal(size=n) * 0.3 + 1.0).tolist(),
            "b5": [0.0] * n,
        }

    def test_matches_sequential(self, rng):
        n = 60
        prog = two_pass_program(n)
        env = self.env(rng, n)
        res = parallelize_program(prog, env)
        ref = evaluate_program(prog, env)
        for name in env:
            assert np.allclose(res.env[name], ref[name])

    def test_methods_reported(self, rng):
        n = 20
        res = parallelize_program(two_pass_program(n), self.env(rng, n))
        assert res.methods == ["moebius", "map"]
        assert res.fully_parallel

    def test_environment_threads_between_statements(self, rng):
        # the second statement must read the FIRST statement's output
        n = 10
        prog = LoopProgram([
            Loop(n, Assign(Ref("a", I), Const(2.0))),
            Loop(n, Assign(Ref("b", I), BinOp("*", Ref("a", I), Const(3.0)))),
        ])
        env = {"a": [0.0] * n, "b": [0.0] * n}
        res = parallelize_program(prog, env)
        assert res.env["b"] == [6.0] * n

    def test_fallback_statement_still_correct(self, rng):
        n = 8
        degree2 = Loop(
            n - 1,
            Assign(
                Ref("x", AffineIndex(1, 1)),
                BinOp("+", BinOp("*", Ref("x", I), Ref("x", I)), Const(0.1)),
            ),
        )
        after = Loop(n, Assign(Ref("y", I), BinOp("*", Ref("x", I), Const(2.0))))
        prog = LoopProgram([degree2, after])
        env = {"x": [0.4] * n, "y": [0.0] * n}
        res = parallelize_program(prog, env)
        ref = evaluate_program(prog, env)
        assert not res.fully_parallel
        assert res.steps[0].fallback and not res.steps[1].fallback
        for name in env:
            assert np.allclose(res.env[name], ref[name])

    def test_input_env_untouched(self, rng):
        n = 12
        prog = two_pass_program(n)
        env = self.env(rng, n)
        snapshot = {k: list(v) for k, v in env.items()}
        parallelize_program(prog, env)
        assert env == snapshot
