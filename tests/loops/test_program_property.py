"""Chaos test: random multi-statement loop programs.

Builds LoopPrograms of 2-4 statements drawn from the supported shapes
(maps, affine chains, reductions, scatter-adds, guarded bodies) over
shared arrays, and asserts the parallelized program always equals the
sequential interpreter -- including when individual statements fall
back.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.loops.ast import (
    AffineIndex,
    Assign,
    BinOp,
    Compare,
    Const,
    Loop,
    Ref,
    TableIndex,
    Where,
)
from repro.loops.program import LoopProgram, evaluate_program, parallelize_program

N = 20
M = 30
I = AffineIndex()


def _statement(kind, rng):
    """One random statement of the given kind over arrays X, Y, W, q."""
    if kind == "map":
        return Loop(
            N, Assign(Ref("Y", I), BinOp("*", Ref("X", I), Const(round(rng.uniform(-2, 2), 2))))
        )
    if kind == "chain":
        return Loop(
            N - 1,
            Assign(
                Ref("X", AffineIndex(1, 1)),
                BinOp(
                    "+",
                    BinOp("*", Const(round(rng.uniform(-0.8, 0.8), 2)), Ref("X", I)),
                    Ref("Y", I),
                ),
            ),
        )
    if kind == "reduction":
        c = AffineIndex(0, 0)
        return Loop(
            N, Assign(Ref("q", c), BinOp("+", Ref("q", c), Ref("X", I)))
        )
    if kind == "scatter":
        g = TableIndex(rng.integers(0, 5, size=N))
        return Loop(
            N, Assign(Ref("W", g), BinOp("+", Ref("W", g), Ref("Y", I)))
        )
    if kind == "guarded":
        return Loop(
            N - 1,
            Assign(
                Ref("X", AffineIndex(1, 1)),
                Where(
                    Compare(">", Ref("Y", I), Const(0.0)),
                    BinOp("+", Ref("X", I), Const(0.5)),
                    BinOp("*", Ref("X", I), Const(0.5)),
                ),
            ),
        )
    if kind == "degree2":  # intentionally outside the framework
        return Loop(
            N - 1,
            Assign(
                Ref("X", AffineIndex(1, 1)),
                BinOp("+", BinOp("*", Ref("X", I), Ref("X", I)), Const(0.01)),
            ),
        )
    raise AssertionError(kind)


KINDS = ["map", "chain", "reduction", "scatter", "guarded", "degree2"]


@given(
    st.lists(st.sampled_from(KINDS), min_size=2, max_size=4),
    st.integers(0, 10**6),
)
@settings(max_examples=50, deadline=None)
def test_random_programs_match_interpreter(kinds, seed):
    rng = np.random.default_rng(seed)
    program = LoopProgram([_statement(k, rng) for k in kinds])
    env = {
        "X": (0.4 * rng.normal(size=N)).tolist(),
        "Y": rng.normal(size=N).tolist(),
        "W": [0.0] * 5,
        "q": [0.0],
    }
    result = parallelize_program(program, env)
    reference = evaluate_program(program, env)
    for name in env:
        for a, b in zip(result.env[name], reference[name]):
            if not math.isfinite(b):
                # chained degree2 statements can overflow; once the
                # reference walk leaves the finite range, evaluation
                # order alone decides inf vs nan — only require that
                # both paths overflowed.
                assert not math.isfinite(a), (name, kinds)
                continue
            assert a == pytest.approx(b, rel=1e-6, abs=1e-9), (name, kinds)
    # degree2 statements (and only those) must have fallen back
    for kind, step in zip(kinds, result.steps):
        if kind == "degree2":
            assert step.fallback
        else:
            assert not step.fallback, (kind, step.note)
