"""Property tests: randomly generated Python loop sources round-trip
through the frontend and parallelize to the sequential semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.loops.program import evaluate_program
from repro.loops.pyfrontend import loops_from_source, parallelize_source

N = 24


@st.composite
def affine_loop_sources(draw):
    """A random single-loop function in the supported fragment:
    ``X[i+1] = c0*X[i] (+|-) (Y[i+sh] (*|+) c1)`` with random affine
    shifts and coefficients."""
    c0 = draw(st.floats(-0.9, 0.9).map(lambda v: round(v, 3)))
    c1 = draw(st.floats(-2.0, 2.0).map(lambda v: round(v, 3)))
    sh = draw(st.integers(0, 1))
    outer = draw(st.sampled_from(["+", "-"]))
    inner = draw(st.sampled_from(["*", "+"]))
    start = draw(st.integers(0, 2))
    body = (
        f"X[i + 1] = {c0} * X[i] {outer} (Y[i + {sh}] {inner} {c1})"
    )
    source = (
        "def f(X, Y):\n"
        f"    for i in range({start}, n):\n"
        f"        {body}\n"
    )
    return source


class TestRandomSources:
    @given(affine_loop_sources(), st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_parallelized_equals_interpreted(self, source, seed):
        rng = np.random.default_rng(seed)
        env = {
            "X": rng.normal(size=N + 2).tolist(),
            "Y": rng.normal(size=N + 2).tolist(),
        }
        consts = {"n": N}
        program = loops_from_source(source, consts=consts)
        result = parallelize_source(source, env, consts=consts)
        reference = evaluate_program(program, env)
        assert not result.steps[0].fallback
        for name in env:
            got, want = result.env[name], reference[name]
            for a, b in zip(got, want):
                assert a == pytest.approx(b, rel=1e-7, abs=1e-10)

    @given(affine_loop_sources())
    @settings(max_examples=30, deadline=None)
    def test_parse_is_deterministic(self, source):
        a = loops_from_source(source, consts={"n": N})
        b = loops_from_source(source, consts={"n": N})
        assert len(a) == len(b) == 1
        assert a.loops[0] == b.loops[0]
