"""Tests for the Python-source frontend."""

import numpy as np
import pytest

from repro.core import IRClass
from repro.loops.program import evaluate_program
from repro.loops.pyfrontend import (
    FrontendError,
    loops_from_source,
    parallelize_source,
)

N = 48


# module-level functions so inspect.getsource works ----------------------


def linear_kernel(X, Y, Z):
    for i in range(1, n):  # noqa: F821  (bound via consts)
        X[i] = X[i - 1] * Y[i] + Z[i]


def two_phase_kernel(X, W, S, H):
    """A strided scatter then a guarded reduction."""
    for i in range(n):  # noqa: F821
        H[7 * i + j] = H[7 * i + j] + W[i]  # noqa: F821
    for k in range(n):  # noqa: F821
        S[0] += W[k] * X[k] if X[k] > 0.0 else 0.0


def env_linear(rng):
    return {
        "X": rng.normal(size=N).tolist(),
        "Y": (0.5 * rng.normal(size=N)).tolist(),
        "Z": rng.normal(size=N).tolist(),
    }


class TestParsing:
    def test_callable_and_string_agree(self, rng):
        consts = {"n": N}
        from_callable = loops_from_source(linear_kernel, consts=consts)
        source = (
            "def f(X, Y, Z):\n"
            "    for i in range(1, n):\n"
            "        X[i] = X[i - 1] * Y[i] + Z[i]\n"
        )
        from_string = loops_from_source(source, consts=consts)
        assert len(from_callable) == len(from_string) == 1
        env = env_linear(rng)
        a = evaluate_program(from_callable, env)
        b = evaluate_program(from_string, env)
        assert a == b

    def test_range_start_shifts_indices(self):
        prog = loops_from_source(linear_kernel, consts={"n": 10})
        loop = prog.loops[0]
        assert loop.n == 9
        # g: i over source range(1, n) -> offset 1 in our 0-based frame
        assert loop.body.target.index.stride == 1
        assert loop.body.target.index.offset == 1

    def test_strided_index_with_const(self):
        prog = loops_from_source(two_phase_kernel, consts={"n": 8, "j": 3})
        scatter = prog.loops[0]
        assert scatter.body.target.index.stride == 7
        assert scatter.body.target.index.offset == 3

    def test_docstring_skipped(self):
        prog = loops_from_source(two_phase_kernel, consts={"n": 4, "j": 0})
        assert len(prog) == 2

    def test_augassign_lowered(self):
        prog = loops_from_source(two_phase_kernel, consts={"n": 4, "j": 0})
        reduction = prog.loops[1]
        # S[0] += e  ->  S[0] = S[0] + e
        from repro.loops.ast import BinOp, Ref

        assert isinstance(reduction.body.expr, BinOp)
        assert reduction.body.expr.op == "+"
        assert isinstance(reduction.body.expr.left, Ref)


class TestParallelization:
    def test_linear_kernel(self, rng):
        env = env_linear(rng)
        res = parallelize_source(linear_kernel, env, consts={"n": N})
        prog = loops_from_source(linear_kernel, consts={"n": N})
        ref = evaluate_program(prog, env)
        assert res.methods == ["moebius"]
        assert np.allclose(res.env["X"], ref["X"])

    def test_two_phase_kernel(self, rng):
        m = 7 * N + 7
        env = {
            "X": rng.normal(size=N).tolist(),
            "W": rng.normal(size=N).tolist(),
            "S": [0.0],
            "H": [0.0] * m,
        }
        res = parallelize_source(two_phase_kernel, env, consts={"n": N, "j": 3})
        prog = loops_from_source(two_phase_kernel, consts={"n": N, "j": 3})
        ref = evaluate_program(prog, env)
        assert res.fully_parallel
        for name in env:
            assert np.allclose(res.env[name], ref[name]), name

    def test_classification_surface(self):
        prog = loops_from_source(linear_kernel, consts={"n": 10})
        from repro.loops import recognize

        assert recognize(prog.loops[0]).ir_class is IRClass.LINEAR


class TestRejections:
    def check(self, source, match, consts=None):
        with pytest.raises(FrontendError, match=match):
            loops_from_source(source, consts=consts or {"n": 4})

    def test_quadratic_index(self):
        self.check(
            "def f(A):\n    for i in range(n):\n        A[i*i] = 1.0\n",
            "quadratic",
        )

    def test_multiple_statements(self):
        self.check(
            "def f(A):\n    for i in range(n):\n        A[i] = 1.0\n"
            "        A[i] = 2.0\n",
            "one statement",
        )

    def test_non_loop_statement(self):
        self.check("def f(A):\n    x = 1\n", "sequence of for loops")

    def test_unbound_scalar(self):
        self.check(
            "def f(A):\n    for i in range(n):\n        A[i] = B\n",
            "consts",
        )

    def test_while_rejected(self):
        self.check(
            "def f(A):\n    while True:\n        pass\n",
            "sequence of for loops",
        )

    def test_range_step_rejected(self):
        self.check(
            "def f(A):\n    for i in range(0, n, 2):\n        A[i] = 1.0\n",
            "range",
        )

    def test_boolean_guard_rejected(self):
        self.check(
            "def f(A, S):\n    for i in range(n):\n"
            "        A[i] = 1.0 if S[i] > 0 and S[i] < 2 else 0.0\n",
            "single comparison",
        )

    def test_empty_function(self):
        self.check('def f(A):\n    "doc"\n', "no loops")

    def test_float_bound_rejected(self):
        self.check(
            "def f(A):\n    for i in range(m):\n        A[i] = 1.0\n",
            "int",
            consts={"m": 2.5},
        )
