"""Unit tests for linear-fractional coefficient extraction."""

from fractions import Fraction

import pytest

from repro.core.moebius import Mat2
from repro.loops.ast import AffineIndex, BinOp, Const, Ref
from repro.loops.linfrac import DegreeError, extract_moebius_matrix

I = AffineIndex()
G = AffineIndex(1, 1)
X = Ref("X", I)


def extract(expr, env=None, i=0):
    env = env or {"X": [1.0] * 10}
    return extract_moebius_matrix(expr, i, env, target="X", f_index=I, g_index=G)


class TestExtraction:
    def test_affine_body(self):
        # 2*X + 3 -> [[2,3],[0,1]]
        m = extract(BinOp("+", BinOp("*", Const(2), X), Const(3)))
        assert m == Mat2(2, 3, 0, 1)

    def test_rational_body(self):
        # (2X+1)/(X+3)
        num = BinOp("+", BinOp("*", Const(2), X), Const(1))
        den = BinOp("+", X, Const(3))
        assert extract(BinOp("/", num, den)) == Mat2(2, 1, 1, 3)

    def test_reciprocal(self):
        m = extract(BinOp("/", Const(1), X))
        assert m == Mat2(0, 1, 1, 0)

    def test_subtraction_both_sides(self):
        assert extract(BinOp("-", X, Const(4))) == Mat2(1, -4, 0, 1)
        assert extract(BinOp("-", Const(4), X)) == Mat2(-1, 4, 0, 1)

    def test_x_plus_x_collapses(self):
        m = extract(BinOp("+", X, X))
        assert m == Mat2(2, 0, 0, 1)

    def test_x_minus_x_degenerates_to_constant(self):
        m = extract(BinOp("-", X, X))
        assert m == Mat2(0, 0, 0, 1)

    def test_own_cell_reads_fold_as_initial(self):
        env = {"X": [10.0, 20.0, 30.0], "Y": [1.0, 2.0, 3.0]}
        # X[g] + Y[i]*X[f]  at i=1: own value X[g(1)] = X[2] = 30
        expr = BinOp(
            "+", Ref("X", G), BinOp("*", Ref("Y", I), Ref("X", I))
        )
        m = extract_moebius_matrix(
            expr, 1, env, target="X", f_index=I, g_index=G
        )
        assert m == Mat2(2.0, 30.0, 0, 1)

    def test_foreign_arrays_evaluated(self):
        env = {"X": [0.0] * 5, "c": [5.0, 7.0]}
        m = extract(BinOp("*", Ref("c", I), X), env=env, i=1)
        assert m == Mat2(7.0, 0, 0, 1)

    def test_fraction_coefficients_exact(self):
        env = {"X": [Fraction(1)] * 5}
        m = extract(
            BinOp("/", X, Const(Fraction(3))), env=env
        )
        assert m == Mat2(Fraction(1), Fraction(0), Fraction(0), Fraction(3))


class TestDegreeRejection:
    def test_square_rejected(self):
        with pytest.raises(DegreeError, match="degree 2"):
            extract(BinOp("*", X, X))

    def test_cubic_rejected(self):
        with pytest.raises(DegreeError):
            extract(BinOp("*", BinOp("*", X, X), X))

    def test_x_over_x_rejected_even_though_reducible(self):
        # X^2 / X is mathematically linear but symbolically degree 2;
        # documented limitation: the transformer falls back
        with pytest.raises(DegreeError):
            extract(BinOp("/", BinOp("*", X, X), X))

    def test_division_by_zero_subexpression(self):
        with pytest.raises(ZeroDivisionError):
            extract(BinOp("/", X, BinOp("-", X, X)))
