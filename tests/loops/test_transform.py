"""Tests for the parallelizing transformer: every method path must
reproduce the sequential interpreter exactly (or within float
tolerance)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import ADD, CONCAT, IRClass, make_operator
from repro.loops.ast import (
    AffineIndex,
    Assign,
    BinOp,
    Const,
    Loop,
    OpApply,
    Ref,
    TableIndex,
    evaluate_loop,
)
from repro.loops.transform import flip_operator, parallelize, pick_arith_operator

I = AffineIndex()


def run_both(loop, env, **kw):
    res = parallelize(loop, env, **kw)
    ref = evaluate_loop(loop, env)
    return res, ref


def assert_env_close(got, ref, rel=1e-8):
    for name in ref:
        a, b = got[name], ref[name]
        assert len(a) == len(b)
        for x, y in zip(a, b):
            if isinstance(x, float) or isinstance(y, float):
                assert x == pytest.approx(y, rel=rel, abs=1e-10)
            else:
                assert x == y


class TestMapPath:
    def test_pure_map(self, rng):
        n = 40
        loop = Loop(
            n, Assign(Ref("B", I), BinOp("*", Ref("Y", I), Ref("Z", I)))
        )
        env = {
            "B": [0.0] * n,
            "Y": rng.normal(size=n).tolist(),
            "Z": rng.normal(size=n).tolist(),
        }
        res, ref = run_both(loop, env)
        assert res.method == "map"
        assert_env_close(res.env, ref)

    def test_map_with_own_read_distinct_g(self, rng):
        n = 20
        loop = Loop(
            n, Assign(Ref("B", I), BinOp("+", Ref("B", I), Ref("Y", I)))
        )
        env = {"B": rng.normal(size=n).tolist(), "Y": rng.normal(size=n).tolist()}
        res, ref = run_both(loop, env)
        assert res.method == "map"
        assert_env_close(res.env, ref)

    def test_map_duplicate_g_without_own_reads_last_writer_wins(self, rng):
        g = TableIndex([0, 1, 0])
        loop = Loop(3, Assign(Ref("B", g), Ref("Y", I)))
        env = {"B": [0.0, 0.0], "Y": [1.0, 2.0, 3.0]}
        res, ref = run_both(loop, env)
        assert res.method == "map"
        assert res.env["B"] == ref["B"] == [3.0, 2.0]

    def test_env_missing_target_raises(self):
        loop = Loop(1, Assign(Ref("B", I), Const(1)))
        with pytest.raises(KeyError, match="target array"):
            parallelize(loop, {"Y": [1]})

    def test_input_env_not_mutated(self, rng):
        n = 10
        loop = Loop(n, Assign(Ref("B", I), Ref("Y", I)))
        env = {"B": [0.0] * n, "Y": rng.normal(size=n).tolist()}
        before = {k: list(v) for k, v in env.items()}
        parallelize(loop, env)
        assert env == before


class TestMoebiusPath:
    @pytest.mark.parametrize("engine", ["numpy", "python"])
    def test_linear_chain(self, rng, engine):
        n = 60
        loop = Loop(
            n - 1,
            Assign(
                Ref("X", AffineIndex(1, 1)),
                BinOp(
                    "+",
                    BinOp("*", Ref("X", I), Ref("A", AffineIndex(1, 1))),
                    Ref("B", AffineIndex(1, 1)),
                ),
            ),
        )
        env = {
            "X": rng.normal(size=n).tolist(),
            "A": (0.5 * rng.normal(size=n)).tolist(),
            "B": rng.normal(size=n).tolist(),
        }
        res, ref = run_both(loop, env, engine=engine)
        assert res.method == "moebius"
        assert_env_close(res.env, ref)

    def test_rational_chain(self):
        n = 30
        loop = Loop(
            n,
            Assign(
                Ref("X", AffineIndex(1, 1)),
                BinOp(
                    "/",
                    BinOp("+", BinOp("*", Const(2.0), Ref("X", I)), Const(1.0)),
                    BinOp("+", Ref("X", I), Const(3.0)),
                ),
            ),
        )
        env = {"X": [1.0] * (n + 1)}
        res, ref = run_both(loop, env)
        assert res.method == "moebius"
        assert res.recognition.ir_class is IRClass.MOEBIUS_RATIONAL
        assert_env_close(res.env, ref)

    def test_reduction_chain_renamed(self, rng):
        n = 120
        c = AffineIndex(0, 0)
        loop = Loop(
            n,
            Assign(
                Ref("q", c),
                BinOp("+", Ref("q", c), BinOp("*", Ref("z", I), Ref("x", I))),
            ),
        )
        env = {
            "q": [0.0],
            "z": rng.normal(size=n).tolist(),
            "x": rng.normal(size=n).tolist(),
        }
        res, ref = run_both(loop, env)
        assert res.method == "moebius"
        assert res.env["q"][0] == pytest.approx(ref["q"][0], rel=1e-7)

    def test_scatter_affine_renamed(self, rng):
        n, m = 80, 7
        g = TableIndex(rng.integers(0, m, size=n))
        loop = Loop(
            n,
            Assign(
                Ref("X", g),
                BinOp("+", BinOp("*", Const(0.5), Ref("X", g)), Ref("c", I)),
            ),
        )
        env = {"X": [1.0] * m, "c": rng.normal(size=n).tolist()}
        res, ref = run_both(loop, env)
        assert res.method == "moebius"
        assert_env_close(res.env, ref, rel=1e-6)

    def test_degree2_falls_back(self):
        loop = Loop(
            5,
            Assign(
                Ref("X", AffineIndex(1, 1)),
                BinOp("+", BinOp("*", Ref("X", I), Ref("X", I)), Const(0.1)),
            ),
        )
        res, ref = run_both(loop, {"X": [0.5] * 6})
        assert res.fallback and "degree" in res.note
        assert_env_close(res.env, ref)

    def test_mixed_own_and_f_with_duplicates_falls_back(self, rng):
        g = TableIndex([0, 1, 0, 1])
        f = TableIndex([1, 0, 1, 0])
        loop = Loop(
            4,
            Assign(
                Ref("X", g),
                BinOp("+", Ref("X", g), BinOp("*", Const(0.5), Ref("X", f))),
            ),
        )
        res, ref = run_both(loop, {"X": [1.0, 2.0]})
        assert res.fallback
        assert_env_close(res.env, ref)

    @given(st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_property_random_affine_loops(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 40))
        m = n + int(rng.integers(1, 10))
        perm = rng.permutation(m)[:n]
        f = rng.integers(0, m, size=n)
        loop = Loop(
            n,
            Assign(
                Ref("X", TableIndex(perm)),
                BinOp(
                    "+",
                    BinOp("*", Ref("a", I), Ref("X", TableIndex(f))),
                    Ref("b", I),
                ),
            ),
        )
        env = {
            "X": rng.normal(size=m).tolist(),
            "a": (0.7 * rng.normal(size=n)).tolist(),
            "b": rng.normal(size=n).tolist(),
        }
        res, ref = run_both(loop, env)
        # when the drawn f table coincides with g the body reads only
        # its own cell and the map path is the correct classification
        assert res.method in ("moebius", "map")
        assert not res.fallback
        assert_env_close(res.env, ref, rel=1e-6)


class TestOrdinaryIRPath:
    def test_generic_op_both_orders(self, rng):
        n, m = 30, 40
        perm = rng.permutation(m)[:n]
        f = rng.integers(0, m, size=n)
        A0 = [(f"s{j}",) for j in range(m)]
        for swapped in (False, True):
            args = (Ref("A", TableIndex(perm)), Ref("A", TableIndex(f)))
            left, right = (args if swapped else args[::-1])
            loop = Loop(
                n,
                Assign(Ref("A", TableIndex(perm)), OpApply(CONCAT, left, right)),
            )
            res, ref = run_both(loop, {"A": A0})
            assert res.method == "ordinary-ir"
            assert res.env["A"] == ref["A"]

    def test_fold_reduction_argmin(self, rng):
        argmin = make_operator(
            "argmin", lambda p, q: p if p <= q else q, commutative=True,
            power=lambda x, k: x,
        )
        n = 100
        xs = [(float(v), k) for k, v in enumerate(rng.normal(size=n))]
        c = AffineIndex(0, 0)
        loop = Loop(
            n, Assign(Ref("m", c), OpApply(argmin, Ref("m", c), Ref("xs", I)))
        )
        env = {"m": [(float("inf"), -1)], "xs": xs}
        res, ref = run_both(loop, env)
        assert res.method == "ordinary-ir"
        assert res.env["m"] == ref["m"]
        assert res.env["m"][0][1] == int(np.argmin([v for v, _ in xs]))

    def test_fold_scatter_non_commutative(self, rng):
        n, m = 60, 9
        g = TableIndex(rng.integers(0, m, size=n))
        words = [(f"w{k}",) for k in range(n)]
        for swapped in (False, True):
            own = Ref("acc", g)
            other = Ref("w", I)
            left, right = (other, own) if swapped else (own, other)
            loop = Loop(
                n, Assign(Ref("acc", g), OpApply(CONCAT, left, right))
            )
            res, ref = run_both(loop, {"acc": [()] * m, "w": words})
            assert res.method == "ordinary-ir"
            assert res.env["acc"] == ref["acc"]

    def test_non_distinct_commutative_routes_to_gir(self, rng):
        n, m = 25, 6
        g = TableIndex(rng.integers(0, m, size=n))
        f = TableIndex(rng.integers(0, m, size=n))
        loop = Loop(
            n, Assign(Ref("A", g), OpApply(ADD, Ref("A", f), Ref("A", g)))
        )
        env = {"A": [int(v) for v in rng.integers(0, 50, size=m)]}
        res, ref = run_both(loop, env)
        assert res.method == "gir"
        assert res.env["A"] == ref["A"]

    def test_non_distinct_non_commutative_falls_back(self, rng):
        n, m = 10, 3
        g = TableIndex(rng.integers(0, m, size=n))
        f = TableIndex(rng.integers(0, m, size=n))
        loop = Loop(
            n, Assign(Ref("A", g), OpApply(CONCAT, Ref("A", f), Ref("A", g)))
        )
        env = {"A": [(f"s{j}",) for j in range(m)]}
        res, ref = run_both(loop, env)
        assert res.fallback
        assert res.env["A"] == ref["A"]


class TestGIRPath:
    def test_arithmetic_gir(self, rng):
        n, m = 20, 30
        perm = rng.permutation(m)[:n]
        loop = Loop(
            n,
            Assign(
                Ref("A", TableIndex(perm)),
                BinOp(
                    "+",
                    Ref("A", TableIndex(rng.integers(0, m, size=n))),
                    Ref("A", TableIndex(rng.integers(0, m, size=n))),
                ),
            ),
        )
        env = {"A": [int(v) for v in rng.integers(0, 100, size=m)]}
        res, ref = run_both(loop, env)
        assert res.method == "gir"
        assert res.env["A"] == ref["A"]

    def test_non_commutative_gir_falls_back_with_reason(self, rng):
        n, m = 8, 12
        perm = rng.permutation(m)[:n]
        loop = Loop(
            n,
            Assign(
                Ref("A", TableIndex(perm)),
                OpApply(
                    CONCAT,
                    Ref("A", TableIndex(rng.integers(0, m, size=n))),
                    Ref("A", TableIndex(rng.integers(0, m, size=n))),
                ),
            ),
        )
        env = {"A": [(f"s{j}",) for j in range(m)]}
        res, ref = run_both(loop, env)
        assert res.fallback and "commutative" in res.note
        assert res.env["A"] == ref["A"]


class TestHelpers:
    def test_pick_arith_operator(self):
        assert pick_arith_operator("+", 1).name == "add"
        assert pick_arith_operator("+", 1.0).name == "float_add"
        assert pick_arith_operator("*", np.float64(1.0)).name == "float_mul"
        with pytest.raises(ValueError):
            pick_arith_operator("-", 1)

    def test_flip_operator_semantics(self):
        flipped = flip_operator(CONCAT)
        assert flipped(("a",), ("b",)) == ("b", "a")
        assert flipped.associative
        assert flipped.name == "concat_flipped"

    def test_flip_preserves_power(self):
        flipped = flip_operator(CONCAT)
        assert flipped.power(("x",), 3) == ("x", "x", "x")
