"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")

    def test_version_reports_numpy(self, capsys):
        import numpy

        assert main(["version"]) == 0
        assert f"numpy {numpy.__version__}" in capsys.readouterr().out

    def test_census(self, capsys):
        assert main(["census", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "tri-diagonal" in out and "totals:" in out

    def test_fig3_small(self, capsys):
        assert main(["fig3", "--n", "256", "--max-p", "16"]) == 0
        out = capsys.readouterr().out
        assert "parallel_IR" in out and "crossover" in out

    def test_scan_add(self, capsys):
        assert main(["scan", "1", "2", "3"]) == 0
        assert capsys.readouterr().out.strip() == "1 3 6"

    def test_scan_max(self, capsys):
        assert main(["scan", "3", "1", "5", "--op", "max"]) == 0
        assert capsys.readouterr().out.strip() == "3 3 5"

    @pytest.mark.parametrize("demo", ["chain", "fibonacci", "scatter"])
    def test_explain(self, demo, capsys):
        assert main(["explain", "--demo", demo, "--n", "10"]) == 0
        out = capsys.readouterr().out
        assert "system" in out


class TestSolveCommand:
    def test_solve_ordinary_from_file(self, tmp_path, capsys):
        from repro.core import CONCAT, OrdinaryIRSystem
        from repro.core.serialize import dump_system

        path = str(tmp_path / "system.json")
        dump_system(
            OrdinaryIRSystem.build(
                [("a",), ("b",), ("c",)], [1, 2], [0, 1], CONCAT
            ),
            path,
        )
        assert main(["solve", path, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "A[2] = ('a', 'b', 'c')" in captured.out
        assert "stats" in captured.err

    def test_solve_gir_from_file(self, tmp_path, capsys):
        from repro.core import GIRSystem, modular_mul
        from repro.core.serialize import dump_system

        path = str(tmp_path / "gir.json")
        dump_system(
            GIRSystem.build(
                [2, 3, 1, 1], [2, 3], [1, 2], [0, 1], modular_mul(97)
            ),
            path,
        )
        assert main(["solve", path]) == 0
        out = capsys.readouterr().out
        assert "A[3] = 18" in out  # 2*3=6, 6*3=18 mod 97


def fig3_system_file(tmp_path, n=300):
    """A serialized Fig-3-shaped workload (maximal FLOAT_MUL chain)."""
    import numpy as np

    from repro.core import FLOAT_MUL, OrdinaryIRSystem
    from repro.core.serialize import dump_system

    path = str(tmp_path / "fig3.json")
    dump_system(
        OrdinaryIRSystem.build(
            np.full(n + 1, 1.0000001), np.arange(1, n + 1), np.arange(n),
            FLOAT_MUL,
        ),
        path,
    )
    return path


class TestJSONOutput:
    def test_solve_json(self, tmp_path, capsys):
        from repro.core import CONCAT, OrdinaryIRSystem
        from repro.core.serialize import dump_system

        path = str(tmp_path / "chain.json")
        dump_system(
            OrdinaryIRSystem.build(
                [(f"s{j}",) for j in range(17)],
                list(range(1, 17)),
                list(range(16)),
                CONCAT,
            ),
            path,
        )
        assert main(["solve", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["matches_sequential"] is True
        assert len(payload["cells"]) == 17
        assert payload["stats"]["rounds"] == 4  # ceil(log2 16)

    def test_census_json(self, capsys):
        assert main(["census", "--n", "16", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload) == 24
        assert {e["group"] for e in payload} <= {
            "none", "linear", "indexed", "outside-template"
        }
        assert payload[4]["name"] == "tri-diagonal elimination"


class TestObservabilityFlags:
    def test_solve_trace_out_rounds_agree_with_stats(self, tmp_path, capsys):
        """Acceptance: per-round spans in the Chrome trace equal the
        solver's own SolveStats.rounds on the Fig-3 workload."""
        import math

        n = 300
        path = fig3_system_file(tmp_path, n=n)
        trace_path = str(tmp_path / "t.json")
        assert main(["solve", path, "--json", "--trace-out", trace_path]) == 0
        stats = json.loads(capsys.readouterr().out)["stats"]
        with open(trace_path) as handle:
            trace = json.load(handle)
        rounds = [
            e for e in trace["traceEvents"]
            if e.get("name") == "solver.round"
        ]
        assert len(rounds) == stats["rounds"] == math.ceil(math.log2(n))
        actives = [e["args"]["active"] for e in rounds]
        assert actives == stats["active_per_round"]

    def test_solve_metrics_json(self, tmp_path, capsys):
        path = fig3_system_file(tmp_path, n=32)
        metrics_path = str(tmp_path / "m.json")
        assert main(["solve", path, "--metrics-json", metrics_path]) == 0
        capsys.readouterr()
        series = json.loads(open(metrics_path).read())
        by_name = {(e["name"], e["labels"].get("engine")): e for e in series}
        assert by_name[("solver.rounds", "numpy")]["value"] == 5

    def test_census_trace_out_writes_valid_trace(self, tmp_path, capsys):
        # census classification is static, so the trace has no solver
        # spans -- but the flag must still write a well-formed file.
        trace_path = str(tmp_path / "census.json")
        assert main(["census", "--n", "8", "--trace-out", trace_path]) == 0
        capsys.readouterr()
        trace = json.loads(open(trace_path).read())
        assert isinstance(trace["traceEvents"], list)

    def test_fig3_trace_out_records_solver_spans(self, tmp_path, capsys):
        trace_path = str(tmp_path / "fig3.json")
        assert main(
            ["fig3", "--n", "64", "--max-p", "4", "--trace-out", trace_path]
        ) == 0
        capsys.readouterr()
        trace = json.loads(open(trace_path).read())
        names = {e.get("name") for e in trace["traceEvents"]}
        assert "solver.round" in names
        metric_names = {m["name"] for m in trace["otherData"]["metrics"]}
        assert "solver.rounds" in metric_names

    def test_observation_disabled_after_run(self, tmp_path, capsys):
        from repro import obs

        path = fig3_system_file(tmp_path, n=8)
        assert main(["solve", path, "--trace-out", str(tmp_path / "t.json")]) == 0
        capsys.readouterr()
        assert not obs.is_enabled()


class TestTraceWrapper:
    def test_traced_solve_writes_valid_jsonl(self, tmp_path, capsys):
        from repro.obs import validate_jsonl

        path = fig3_system_file(tmp_path, n=16)
        jsonl = str(tmp_path / "events.jsonl")
        chrome = str(tmp_path / "trace.json")
        assert main(
            ["trace", "--jsonl", jsonl, "--out", chrome, "solve", path]
        ) == 0
        captured = capsys.readouterr()
        assert "A[16]" in captured.out
        assert "solver.ordinary" in captured.err  # tree summary on stderr
        assert validate_jsonl(jsonl) > 0
        trace = json.loads(open(chrome).read())
        assert any(
            e.get("name") == "solver.round" for e in trace["traceEvents"]
        )

    def test_trace_metrics_json(self, tmp_path, capsys):
        path = fig3_system_file(tmp_path, n=8)
        metrics = str(tmp_path / "m.json")
        assert main(
            ["trace", "--no-summary", "--metrics-json", metrics, "solve", path]
        ) == 0
        capsys.readouterr()
        names = {e["name"] for e in json.loads(open(metrics).read())}
        assert "solver.rounds" in names

    def test_trace_requires_command(self, capsys):
        assert main(["trace"]) == 2
        assert "missing command" in capsys.readouterr().err

    def test_trace_rejects_nesting(self, capsys):
        assert main(["trace", "trace", "version"]) == 2
        assert "nest" in capsys.readouterr().err

    def test_trace_propagates_exit_code(self, capsys):
        assert main(["trace", "--no-summary", "version"]) == 0


class TestObsCommands:
    def _snapshot_file(self, tmp_path, name="snap.json", inc=3):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("engine.solves", backend="numpy").inc(inc)
        reg.histogram("engine.session.latency_s").observe(0.01)
        path = tmp_path / name
        path.write_text(json.dumps(reg.snapshot()))
        return str(path)

    def test_obs_serve_prom_out(self, tmp_path, capsys):
        snap = self._snapshot_file(tmp_path)
        out = str(tmp_path / "metrics.prom")
        assert main(["obs", "serve", "--snapshot", snap,
                     "--prom-out", out]) == 0
        text = open(out).read()
        assert "engine_solves_total" in text
        assert "# TYPE engine_session_latency_s histogram" in text

    def test_obs_serve_missing_snapshot(self, tmp_path, capsys):
        assert main(["obs", "serve", "--snapshot",
                     str(tmp_path / "nope.json")]) == 2
        assert "no such snapshot" in capsys.readouterr().err

    def test_obs_top(self, tmp_path, capsys):
        snap = self._snapshot_file(tmp_path)
        assert main(["obs", "top", "--snapshot", snap]) == 0
        out = capsys.readouterr().out
        assert "2 series" in out
        assert "engine.solves{backend=numpy}" in out

    def test_obs_top_live_metrics_json(self, tmp_path, capsys):
        # the snapshot a traced solve writes feeds obs top directly
        path = fig3_system_file(tmp_path, n=32)
        metrics_path = str(tmp_path / "m.json")
        assert main(["solve", path, "--metrics-json", metrics_path]) == 0
        capsys.readouterr()
        assert main(["obs", "top", "--snapshot", metrics_path]) == 0
        assert "solver.rounds" in capsys.readouterr().out

    def test_obs_diff(self, tmp_path, capsys):
        before = self._snapshot_file(tmp_path, "a.json", inc=3)
        after = self._snapshot_file(tmp_path, "b.json", inc=5)
        assert main(["obs", "diff", before, after]) == 0
        out = capsys.readouterr().out
        assert "1 series changed" in out
        assert "+2" in out

    def test_obs_diff_json(self, tmp_path, capsys):
        before = self._snapshot_file(tmp_path, "a.json", inc=3)
        after = self._snapshot_file(tmp_path, "b.json", inc=5)
        assert main(["obs", "diff", before, after, "--json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        changed = [r for r in rows if r["status"] == "changed"]
        assert changed[0]["name"] == "engine.solves"
        assert changed[0]["delta"] == 2
