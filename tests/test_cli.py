"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])


class TestCommands:
    def test_version(self, capsys):
        assert main(["version"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("repro ")

    def test_census(self, capsys):
        assert main(["census", "--n", "16"]) == 0
        out = capsys.readouterr().out
        assert "tri-diagonal" in out and "totals:" in out

    def test_fig3_small(self, capsys):
        assert main(["fig3", "--n", "256", "--max-p", "16"]) == 0
        out = capsys.readouterr().out
        assert "parallel_IR" in out and "crossover" in out

    def test_scan_add(self, capsys):
        assert main(["scan", "1", "2", "3"]) == 0
        assert capsys.readouterr().out.strip() == "1 3 6"

    def test_scan_max(self, capsys):
        assert main(["scan", "3", "1", "5", "--op", "max"]) == 0
        assert capsys.readouterr().out.strip() == "3 3 5"

    @pytest.mark.parametrize("demo", ["chain", "fibonacci", "scatter"])
    def test_explain(self, demo, capsys):
        assert main(["explain", "--demo", demo, "--n", "10"]) == 0
        out = capsys.readouterr().out
        assert "system" in out


class TestSolveCommand:
    def test_solve_ordinary_from_file(self, tmp_path, capsys):
        from repro.core import CONCAT, OrdinaryIRSystem
        from repro.core.serialize import dump_system

        path = str(tmp_path / "system.json")
        dump_system(
            OrdinaryIRSystem.build(
                [("a",), ("b",), ("c",)], [1, 2], [0, 1], CONCAT
            ),
            path,
        )
        assert main(["solve", path, "--stats"]) == 0
        captured = capsys.readouterr()
        assert "A[2] = ('a', 'b', 'c')" in captured.out
        assert "stats" in captured.err

    def test_solve_gir_from_file(self, tmp_path, capsys):
        from repro.core import GIRSystem, modular_mul
        from repro.core.serialize import dump_system

        path = str(tmp_path / "gir.json")
        dump_system(
            GIRSystem.build(
                [2, 3, 1, 1], [2, 3], [1, 2], [0, 1], modular_mul(97)
            ),
            path,
        )
        assert main(["solve", path]) == 0
        out = capsys.readouterr().out
        assert "A[3] = 18" in out  # 2*3=6, 6*3=18 mod 97
