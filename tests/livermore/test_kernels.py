"""Tests for the sequential Livermore kernels.

Where an independent NumPy formulation exists (dot products, prefix
sums, differences, matrix products, argmin, explicit recurrences) the
kernels are checked against it, not just for finiteness.
"""

import math

import numpy as np
import pytest

from repro.livermore.data import INPUT_GENERATORS, kernel_inputs
from repro.livermore.kernels import KERNELS, run_kernel


def _flat(v):
    if isinstance(v, (int, float)):
        yield v
    elif isinstance(v, list):
        for e in v:
            yield from _flat(e)


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_kernel_runs_and_is_finite(kernel):
    n = 48 if kernel in (6, 21) else 80
    d = kernel_inputs(kernel, n, seed=7)
    out = run_kernel(kernel, d)
    values = [x for key in out for x in _flat(out[key])]
    assert values, kernel
    assert all(math.isfinite(x) for x in values if isinstance(x, float))


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_kernel_deterministic(kernel):
    n = 32
    a = run_kernel(kernel, kernel_inputs(kernel, n, seed=3))
    b = run_kernel(kernel, kernel_inputs(kernel, n, seed=3))
    assert a == b


@pytest.mark.parametrize("kernel", sorted(KERNELS))
def test_kernel_inputs_not_mutated(kernel):
    import copy

    n = 32
    d = kernel_inputs(kernel, n, seed=5)
    before = copy.deepcopy(d)
    run_kernel(kernel, d)
    assert d == before


class TestIndependentFormulations:
    def test_k01_closed_form(self):
        d = kernel_inputs(1, 50, seed=1)
        out = run_kernel(1, d)
        y, z = np.asarray(d["y"]), np.asarray(d["z"])
        expect = d["q"] + y * (d["r"] * z[10:60] + d["t"] * z[11:61])
        assert np.allclose(out["x"], expect)

    def test_k03_is_dot_product(self):
        d = kernel_inputs(3, 200, seed=2)
        out = run_kernel(3, d)
        assert out["q"] == pytest.approx(np.dot(d["z"], d["x"]), rel=1e-12)

    def test_k05_explicit_recurrence(self):
        d = kernel_inputs(5, 64, seed=3)
        out = run_kernel(5, d)
        x = list(d["x"])
        for i in range(1, 64):
            x[i] = d["z"][i] * (d["y"][i] - x[i - 1])
        assert out["x"] == x

    def test_k11_is_cumsum(self):
        d = kernel_inputs(11, 100, seed=4)
        out = run_kernel(11, d)
        assert np.allclose(out["x"], np.cumsum(d["y"][:100]))

    def test_k12_is_diff(self):
        d = kernel_inputs(12, 100, seed=5)
        out = run_kernel(12, d)
        assert np.allclose(out["x"], np.diff(d["y"][:101]))

    def test_k21_is_matrix_product(self):
        d = kernel_inputs(21, 12, seed=6)
        out = run_kernel(21, d)
        px = np.asarray(d["px"])
        vy = np.asarray(d["vy"])
        cx = np.asarray(d["cx"])
        expect = px + cx @ vy
        assert np.allclose(out["px"], expect)

    def test_k22_planckian(self):
        d = kernel_inputs(22, 40, seed=7)
        out = run_kernel(22, d)
        y = np.asarray(d["u"]) / np.asarray(d["v"])
        assert np.allclose(out["y"], y)
        assert np.allclose(out["w"], np.asarray(d["x"]) / (np.exp(y) - 1.0))

    def test_k24_is_argmin(self):
        d = kernel_inputs(24, 300, seed=8)
        out = run_kernel(24, d)
        assert out["m"] == int(np.argmin(d["x"]))

    def test_k24_first_min_on_ties(self):
        out = run_kernel(24, {"n": 5, "x": [3.0, 1.0, 1.0, 0.5, 0.5]})
        assert out["m"] == 3

    def test_k02_halving_structure(self):
        # total writes = n/2 + n/4 + ... ; final x differs from input
        d = kernel_inputs(2, 64, seed=9)
        out = run_kernel(2, d)
        assert out["x"] != d["x"]
        assert len(out["x"]) == len(d["x"])

    def test_k06_full_history(self):
        d = kernel_inputs(6, 20, seed=10)
        out = run_kernel(6, d)
        w = list(d["w"])
        for i in range(1, 20):
            acc = 0.01
            for k in range(i):
                acc += d["b"][k][i] * w[i - k - 1]
            w[i] = acc
        assert np.allclose(out["w"], w)

    def test_k19_forward_backward(self):
        d = kernel_inputs(19, 30, seed=11)
        out = run_kernel(19, d)
        b5 = list(d["b5"])
        stb5 = d["stb5"]
        for k in range(30):
            b5[k] = d["sa"][k] + stb5 * d["sb"][k]
            stb5 = b5[k] - stb5
        for k in range(29, -1, -1):
            b5[k] = d["sa"][k] + stb5 * d["sb"][k]
            stb5 = b5[k] - stb5
        assert np.allclose(out["b5"], b5)
        assert out["stb5"] == pytest.approx(stb5)

    def test_k23_fixed_boundary(self):
        d = kernel_inputs(23, 30, seed=12)
        out = run_kernel(23, d)
        za = out["za"]
        # boundary rows/columns untouched
        assert za[0] == d["za"][0]
        assert [row[0] for row in za] == [row[0] for row in d["za"]]
        assert [row[-1] for row in za] == [row[-1] for row in d["za"]]


class TestInputGenerators:
    def test_all_kernels_have_generators(self):
        assert set(INPUT_GENERATORS) == set(range(1, 25))

    def test_unknown_kernel_rejected(self):
        with pytest.raises(KeyError, match="no such Livermore kernel"):
            kernel_inputs(99, 10)

    def test_seeded_reproducibility(self):
        assert kernel_inputs(5, 16, seed=1) == kernel_inputs(5, 16, seed=1)
        assert kernel_inputs(5, 16, seed=1) != kernel_inputs(5, 16, seed=2)
