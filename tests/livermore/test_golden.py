"""Golden regression values for the Livermore kernels.

Each kernel's output at a fixed size/seed is summarized by a
deterministic checksum (sum of |x| mod 997 over all output scalars,
rounded to 1e-6) plus the output scalar count.  Any semantic change to
a kernel, its data generator, or the shared RNG discipline trips the
corresponding entry — update the table *only* after confirming the
change is intentional.
"""

import math

import pytest

from repro.livermore.data import kernel_inputs
from repro.livermore.kernels import run_kernel

SEED = 1997

GOLDEN = {
    1: (59.739769, 101),
    2: (85.630219, 204),
    3: (29.424896, 1),
    4: (70.042303, 123),
    5: (22.89191, 101),
    6: (1.527825, 64),
    7: (75.014277, 101),
    8: (1346.967431, 2448),
    9: (799.467215, 1313),
    10: (1769.748484, 1313),
    11: (2899.331934, 101),
    12: (28.180966, 101),
    13: (6113.915458, 5028),
    14: (13514.813333, 433),
    15: (1259.679803, 2339),
    16: (1488.0, 3),
    17: (649.491609, 304),
    18: (4409.968166, 4944),
    19: (64.359653, 102),
    20: (122.86607, 203),
    21: (12421.356019, 1600),
    22: (178.150492, 202),
    23: (686.608008, 721),
    24: (7.0, 1),
}


def _checksum(out):
    def flat(v):
        if isinstance(v, (int, float)):
            yield float(v)
        elif isinstance(v, list):
            for e in v:
                yield from flat(e)

    total = 0.0
    count = 0
    for key in sorted(out):
        for x in flat(out[key]):
            total += math.fmod(abs(x), 997.0)
            count += 1
    return total, count


@pytest.mark.parametrize("kernel", sorted(GOLDEN))
def test_kernel_golden_checksum(kernel):
    n = 64 if kernel in (6, 21) else 101
    out = run_kernel(kernel, kernel_inputs(kernel, n, seed=SEED))
    total, count = _checksum(out)
    expect_total, expect_count = GOLDEN[kernel]
    assert count == expect_count, (kernel, count)
    assert total == pytest.approx(expect_total, abs=5e-6), (kernel, total)
