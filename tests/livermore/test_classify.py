"""Tests for the Livermore recurrence census (paper section 1)."""

import pytest

from repro.core import IRClass
from repro.livermore.classify import (
    KERNEL_NAMES,
    PAPER_GROUPS,
    ast_model,
    census,
    census_table,
)
from repro.loops import evaluate_loop, parallelize


class TestCensusStructure:
    def test_all_24_kernels_present(self):
        entries = census()
        assert [e.number for e in entries] == list(range(1, 25))
        assert all(e.name == KERNEL_NAMES[e.number] for e in entries)

    def test_groups_are_known(self):
        for e in census():
            assert e.group in ("none", "linear", "indexed", "outside-template")

    def test_modeled_kernels_have_classes(self):
        for e in census():
            if e.modeled:
                assert e.ir_class is not None


class TestExpectedClassifications:
    @pytest.fixture(scope="class")
    def by_number(self):
        return {e.number: e for e in census()}

    @pytest.mark.parametrize("k", [1, 7, 12])
    def test_no_recurrence_kernels(self, by_number, k):
        assert by_number[k].ir_class is IRClass.NO_RECURRENCE
        assert by_number[k].group == "none"

    @pytest.mark.parametrize("k", [5, 11, 19])
    def test_linear_kernels(self, by_number, k):
        assert by_number[k].ir_class is IRClass.LINEAR
        assert by_number[k].group == "linear"

    @pytest.mark.parametrize("k", [3, 21])
    def test_reduction_kernels_are_indexed(self, by_number, k):
        assert by_number[k].ir_class is IRClass.MOEBIUS_AFFINE
        assert by_number[k].group == "indexed"

    def test_k23_is_indexed_moebius(self, by_number):
        # the paper's showcase uses the flattened stride-7 index maps
        assert by_number[23].ir_class is IRClass.MOEBIUS_AFFINE
        assert by_number[23].group == "indexed"

    def test_k24_is_fold(self, by_number):
        assert by_number[24].ir_class is IRClass.ORDINARY_IR
        assert "fold" in by_number[24].basis

    @pytest.mark.parametrize("k", [2, 13, 14, 20])
    def test_structural_indexed_kernels(self, by_number, k):
        assert by_number[k].group == "indexed"
        assert not by_number[k].modeled

    def test_majority_shapes_match_paper_claim(self, by_number):
        indexed = sum(1 for e in by_number.values() if e.group == "indexed")
        linear = sum(1 for e in by_number.values() if e.group == "linear")
        none = sum(1 for e in by_number.values() if e.group == "none")
        # the paper's qualitative claim: a large indexed group, a small
        # linear group, and a moderate none group
        assert indexed >= 8
        assert 3 <= linear <= 7
        assert 6 <= none <= 10


class TestAstModels:
    MODELED = [1, 3, 5, 7, 11, 12, 19, 21, 23, 24]

    @pytest.mark.parametrize("k", MODELED)
    def test_model_parallelizes_without_fallback(self, k):
        loop, env = ast_model(k, n=24, seed=3)
        res = parallelize(loop, env)
        assert not res.fallback, (k, res.note)
        ref = evaluate_loop(loop, env)
        for name in env:
            a, b = res.env[name], ref[name]
            for x, y in zip(a, b):
                if isinstance(x, float):
                    assert x == pytest.approx(y, rel=1e-6, abs=1e-9)
                else:
                    assert x == y

    def test_unmodeled_returns_none(self):
        assert ast_model(2) is None
        assert ast_model(16) is None


class TestRendering:
    def test_table_renders_all_rows(self):
        text = census_table()
        assert "tri-diagonal" in text
        assert "totals:" in text
        assert text.count("\n") >= 26

    def test_paper_groups_note_present(self):
        assert "OCR" in PAPER_GROUPS["note"]
