"""Parallel kernel implementations must match the sequential ones."""

import numpy as np
import pytest

from repro.livermore.data import kernel_inputs
from repro.livermore.kernels import run_kernel
from repro.livermore.parallel import (
    PARALLEL_KERNELS,
    fold_scatter,
    scatter_add,
)
from repro.core.operators import CONCAT


def assert_close(a, b, tol=1e-7, path=""):
    if isinstance(a, list):
        assert len(a) == len(b), path
        for i, (x, y) in enumerate(zip(a, b)):
            assert_close(x, y, tol, f"{path}[{i}]")
    elif isinstance(a, float) or isinstance(b, float):
        assert abs(a - b) <= tol * max(1.0, abs(a), abs(b)), (path, a, b)
    else:
        assert a == b, (path, a, b)


@pytest.mark.parametrize("kernel", sorted(PARALLEL_KERNELS))
@pytest.mark.parametrize("seed", [0, 17])
def test_parallel_matches_sequential(kernel, seed):
    n = 12 if kernel == 21 else 120
    d = kernel_inputs(kernel, n, seed=seed)
    seq = run_kernel(kernel, d)
    par = PARALLEL_KERNELS[kernel](d)
    for name, value in seq.items():
        assert name in par, (kernel, name)
        assert_close(par[name], value, path=f"k{kernel}:{name}")


@pytest.mark.parametrize("kernel", sorted(PARALLEL_KERNELS))
def test_parallel_at_small_sizes(kernel):
    n = 2 if kernel != 21 else 1
    d = kernel_inputs(kernel, n, seed=5)
    seq = run_kernel(kernel, d)
    par = PARALLEL_KERNELS[kernel](d)
    for name, value in seq.items():
        assert_close(par[name], value, path=f"k{kernel}:{name}")


class TestFoldScatter:
    def test_scatter_add_matches_loop(self, rng):
        m, n = 8, 200
        base = rng.normal(size=m).tolist()
        idx = rng.integers(0, m, size=n).tolist()
        vals = rng.normal(size=n).tolist()
        expect = list(base)
        for i, v in zip(idx, vals):
            expect[i] += v
        got = scatter_add(base, idx, vals)
        assert np.allclose(got, expect)

    def test_order_preserved_for_non_commutative(self, rng):
        m, n = 4, 50
        idx = rng.integers(0, m, size=n).tolist()
        vals = [(f"w{k}",) for k in range(n)]
        base = [()] * m
        expect = list(base)
        for i, v in zip(idx, vals):
            expect[i] = expect[i] + v
        assert fold_scatter(base, idx, vals, CONCAT) == expect

    def test_empty(self):
        assert scatter_add([1.0, 2.0], [], []) == [1.0, 2.0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            scatter_add([0.0], [0], [1.0, 2.0])

    def test_untouched_cells_keep_values(self):
        got = scatter_add([1.0, 2.0, 3.0], [1], [10.0])
        assert got == [1.0, 12.0, 3.0]
