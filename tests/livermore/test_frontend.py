"""Tests for the fully-automatic kernel-23 frontend lowering."""

import numpy as np
import pytest

from repro.core import IRClass
from repro.livermore.data import kernel_inputs
from repro.livermore.frontend import k23_loop_program, k23_via_frontend
from repro.livermore.kernels import k23
from repro.loops.program import evaluate_program


class TestLowering:
    def test_program_shape(self):
        d = kernel_inputs(23, 20, seed=0)
        program, env = k23_loop_program(d)
        assert len(program) == 2 * (d["jn"] - 2)
        assert set(env) == {"X", "Y", "ZB", "ZR", "ZU", "ZV", "ZZ"}
        assert len(env["X"]) == (20 + 2) * d["jn"]

    def test_paper_index_maps(self):
        d = kernel_inputs(23, 10, seed=0)
        program, _env = k23_loop_program(d)
        jn = d["jn"]
        recurrence = program.loops[1]  # first sweep's recurrence
        g = recurrence.body.target.index
        assert g.stride == jn and g.offset == jn + 1

    def test_sequential_interpretation_matches_kernel(self):
        d = kernel_inputs(23, 24, seed=4)
        program, env = k23_loop_program(d)
        out = evaluate_program(program, env)
        jn = d["jn"]
        za = [out["X"][r * jn : (r + 1) * jn] for r in range(24 + 2)]
        assert np.allclose(za, k23(d)["za"])


class TestFrontendParallelization:
    @pytest.mark.parametrize("n,seed", [(16, 0), (60, 7)])
    def test_matches_sequential_kernel(self, n, seed):
        d = kernel_inputs(23, n, seed=seed)
        out, result = k23_via_frontend(d)
        assert np.allclose(out["za"], k23(d)["za"])
        assert result.fully_parallel

    def test_every_sweep_is_map_then_moebius(self):
        d = kernel_inputs(23, 20, seed=2)
        _out, result = k23_via_frontend(d)
        assert result.methods == ["map", "moebius"] * (d["jn"] - 2)

    def test_recurrences_classified_as_indexed_affine(self):
        d = kernel_inputs(23, 20, seed=2)
        _out, result = k23_via_frontend(d)
        for step in result.steps[1::2]:
            assert step.recognition.ir_class is IRClass.MOEBIUS_AFFINE
            assert step.recognition.own_reads  # the self-term rewrite fired
