"""Integration tests mirroring the paper's worked examples."""

import numpy as np
import pytest

from repro.core import (
    CONCAT,
    GIRSystem,
    OperatorError,
    OrdinaryIRSystem,
    modular_mul,
    run_gir,
)
from repro.core.cap import cap_iterations, count_all_paths
from repro.core.depgraph import build_dependence_graph
from repro.core.traces import all_ordinary_traces, render_factors, tree_sizes
from repro.livermore.classify import ast_model
from repro.livermore.data import kernel_inputs
from repro.livermore.kernels import k23
from repro.livermore.parallel import k23_parallel
from repro.loops import evaluate_loop, parallelize
from .._legacy_solvers import solve_gir


class TestFig1TraceExample:
    def test_literal_loop_traces(self):
        # ``for i = 1..8: A[i] := A[i+4] * A[i]`` over A[1..12]
        sys_ = OrdinaryIRSystem.build(
            [(j + 1,) for j in range(12)],
            list(range(8)),
            [i + 4 for i in range(8)],
            CONCAT,
        )
        traces = all_ordinary_traces(sys_)
        # cells 9..12 (0-based 8..11) preserve their initial values
        assert set(traces) == set(range(8))
        assert render_factors(traces[7], one_based=True) == "A[12]*A[8]"

    def test_chained_variant_produces_long_traces(self):
        # ``A[i+4] := A[i] * A[i+4]`` produces genuine chains
        sys_ = OrdinaryIRSystem.build(
            [(j + 1,) for j in range(12)],
            [i + 4 for i in range(8)],
            list(range(8)),
            CONCAT,
        )
        traces = all_ordinary_traces(sys_)
        assert render_factors(traces[11], one_based=True) == "A[4]*A[8]*A[12]"


class TestFig5FibonacciExpansion:
    def test_trace_sizes_are_fibonacci(self):
        op = modular_mul(10**9 + 7)
        n = 16
        sys_ = GIRSystem.build(
            [2, 3] + [1] * n,
            [i + 2 for i in range(n)],
            [i + 1 for i in range(n)],
            [i for i in range(n)],
            op,
        )
        sizes = tree_sizes(sys_)
        fib = [1, 1]
        for _ in range(n + 2):
            fib.append(fib[-1] + fib[-2])
        assert sizes[-1] == fib[n + 1]

    def test_paper_n4_example_powers(self):
        # Fig 5: for n = 4, A'[4] = A[0]^fib(3) * A[1]^fib(4)
        op = modular_mul(10**9 + 7)
        sys_ = GIRSystem.build(
            [2, 3, 1, 1, 1, 1],
            [2, 3, 4, 5],
            [1, 2, 3, 4],
            [0, 1, 2, 3],
            op,
        )
        graph = build_dependence_graph(sys_)
        cap = count_all_paths(graph)
        assert cap.powers_by_cell(graph, 3) == {0: 3, 1: 5}
        assert solve_gir(sys_)[0] == run_gir(sys_)

    def test_cap_storyboard_matches_final(self):
        op = modular_mul(97)
        n = 6
        sys_ = GIRSystem.build(
            [2, 3] + [1] * n,
            [i + 2 for i in range(n)],
            [i + 1 for i in range(n)],
            [i for i in range(n)],
            op,
        )
        graph = build_dependence_graph(sys_)
        frames = list(cap_iterations(graph))
        assert frames[-1] == count_all_paths(graph).powers
        assert len(frames) - 1 <= 3  # ceil(log2(depth)) iterations


class TestPvsNCBoundary:
    def test_non_commutative_gir_is_refused(self):
        """The paper: general IR with a non-commutative op would solve
        circuit evaluation; the GIR solver must refuse rather than
        silently reorder."""
        sys_ = GIRSystem.build(
            [("a",), ("b",), ("c",), ("d",)], [3], [0], [1], CONCAT
        )
        with pytest.raises(OperatorError):
            solve_gir(sys_)

    def test_ordinary_shape_with_same_op_is_fine(self):
        sys_ = OrdinaryIRSystem.build(
            [("a",), ("b",), ("c",)], [1, 2], [0, 1], CONCAT
        )
        from repro.core import run_ordinary
        from .._legacy_solvers import solve_ordinary

        assert solve_ordinary(sys_)[0] == run_ordinary(sys_)


class TestLivermore23Showcase:
    def test_kernel_parallel_vs_sequential_full_grid(self):
        d = kernel_inputs(23, 60, seed=21)
        seq = k23(d)["za"]
        par = k23_parallel(d)["za"]
        assert np.allclose(seq, par)

    def test_ast_fragment_recognized_and_parallelized(self):
        loop, env = ast_model(23, n=40, seed=4)
        res = parallelize(loop, env)
        assert res.method == "moebius"
        ref = evaluate_loop(loop, env)
        assert np.allclose(res.env["X"], ref["X"])

    def test_flattened_index_maps_match_paper(self):
        loop, _env = ast_model(23, n=10, seed=0)
        # paper: g(i) = 7(i-1)+j, f(i) = 7(i-2)+j (1-based); here
        # 0-based with jn = 7 and j = 1
        g = loop.body.target.index
        assert g.stride == 7 and g.offset == 8
