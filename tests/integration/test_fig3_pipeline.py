"""End-to-end validation of the Fig-3 measurement pipeline.

Confirms, at test-friendly scale, everything the benchmark relies on:
the vectorized engine's instruction accounting equals the PRAM
interpreter's, the measured series follows the paper's
``T(n,P) = (n/P) log n`` model, and the crossover sits near a small
multiple of ``log2 n``.
"""

import math

import numpy as np
import pytest

from repro.analysis.complexity import loglog_slope, model_parallel_time
from repro.core import FLOAT_MUL, OrdinaryIRSystem, processor_sweep
from repro.pram import profile_ordinary, run_ordinary_on_pram, run_sequential_on_pram


def fig3_system(n):
    """The Fig-3 workload shape: one maximal chain (worst-case depth)."""
    initial = np.full(n + 1, 1.0000001).tolist()
    return OrdinaryIRSystem.build(
        initial, list(range(1, n + 1)), list(range(n)), FLOAT_MUL
    )


class TestCrossLayerAgreement:
    @pytest.mark.parametrize("processors", [1, 2, 7, 32])
    def test_interpreter_equals_vectorized_accounting(self, processors):
        sys_ = fig3_system(40)
        vec_out, profile = profile_ordinary(sys_)
        pram_out, metrics = run_ordinary_on_pram(sys_, processors=processors)
        assert np.allclose(vec_out, pram_out)
        assert metrics.time == profile.parallel_time(processors)

    def test_sequential_baseline_agrees(self):
        sys_ = fig3_system(40)
        out, metrics = run_sequential_on_pram(sys_)
        _, profile = profile_ordinary(sys_)
        assert metrics.time == profile.sequential_time()


class TestPaperShape:
    def test_series_tracks_the_model(self):
        n = 2048
        _, profile = profile_ordinary(fig3_system(n))
        for p in (1, 4, 16, 64, 256):
            measured = profile.parallel_time(p)
            model = model_parallel_time(n, p)
            # same shape up to the per-step instruction constant
            ratio = measured / model
            assert 5 <= ratio <= 25, (p, ratio)

    def test_loglog_slope_near_minus_one(self):
        n = 4096
        _, profile = profile_ordinary(fig3_system(n))
        ps = [1, 2, 4, 8, 16, 32, 64]
        ts = [float(profile.parallel_time(p)) for p in ps]
        slope = loglog_slope(ps, ts)
        assert slope == pytest.approx(-1.0, abs=0.05)

    def test_crossover_small_multiple_of_log_n(self):
        n = 4096
        _, profile = profile_ordinary(fig3_system(n))
        cross = profile.crossover_processors()
        log_n = math.log2(n)
        assert log_n <= cross <= 8 * log_n

    def test_sequential_flat_parallel_decreasing(self):
        _, profile = profile_ordinary(fig3_system(512))
        rows = profile.sweep(processor_sweep(512))
        seqs = {r["sequential_time"] for r in rows}
        assert len(seqs) == 1
        pars = [r["parallel_time"] for r in rows]
        assert pars == sorted(pars, reverse=True)
        assert rows[-1]["speedup"] > 1.0
