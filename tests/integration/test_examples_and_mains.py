"""Smoke tests: every example script and benchmark main() must run.

Examples are user-facing documentation; a broken one is a bug.  Each
is executed in-process (fast) with stdout captured.
"""

import os
import runpy
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

EXAMPLES = [
    "quickstart.py",
    "fibonacci_gir.py",
    "loop_parallelizer.py",
    "pram_playground.py",
    "scans_and_recurrences.py",
    "livermore_hydro.py",
    "python_source_frontend.py",
]


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script, capsys):
    path = os.path.join(REPO_ROOT, "examples", script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), script  # every example prints something


CHEAP_BENCH_MAINS = [
    "bench_fig1_trace_example",
    "bench_fig2_concatenation",
    "bench_fig4_trace_shapes",
    "bench_fig5_fibonacci_powers",
    "bench_fig6_dependence_graph",
    "bench_fig9_cap_iterations",
    "bench_table1_livermore_census",
    "bench_baselines_scan",
    "bench_ablation_power_atomic",
    "bench_ablation_scheduling",
    "bench_fig3_ordinary_ir",
    "bench_livermore_parallel",
    "bench_ablation_work_efficiency",
]


@pytest.mark.parametrize("module", CHEAP_BENCH_MAINS)
def test_benchmark_main_prints_artifact(module, capsys):
    sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))
    try:
        mod = __import__(module)
        mod.main()
    finally:
        sys.path.pop(0)
    out = capsys.readouterr().out
    assert "====" in out  # the banner
