"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

from fractions import Fraction
from typing import List, Tuple

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core import GIRSystem, OrdinaryIRSystem
from repro.core.operators import CONCAT, modular_add, modular_mul


def approx_list(a, b, rel=1e-9, abs_=1e-12):
    """Elementwise closeness for numeric lists (inf-aware)."""
    assert len(a) == len(b)
    for x, y in zip(a, b):
        if isinstance(x, float) or isinstance(y, float):
            assert x == pytest.approx(y, rel=rel, abs=abs_), (x, y)
        else:
            assert x == y


# ---------------------------------------------------------------------------
# Hypothesis strategies for random IR systems
# ---------------------------------------------------------------------------


@st.composite
def ordinary_systems(draw, max_n: int = 24, max_extra: int = 12):
    """A random OrdinaryIR system over the tuple-concatenation monoid.

    CONCAT is associative but *not* commutative, so any operand
    reordering in a solver shows up as a hard mismatch.
    """
    n = draw(st.integers(min_value=0, max_value=max_n))
    m = n + draw(st.integers(min_value=0, max_value=max_extra))
    if n > 0 and m == 0:
        m = n
    perm = draw(st.permutations(list(range(m))))
    g = list(perm[:n])
    f = [draw(st.integers(min_value=0, max_value=max(m - 1, 0))) for _ in range(n)]
    initial = [(f"s{j}",) for j in range(m)]
    return OrdinaryIRSystem.build(initial, g, f, CONCAT) if m else OrdinaryIRSystem.build([], [], [], CONCAT)


@st.composite
def gir_systems(draw, max_n: int = 20, max_extra: int = 10, distinct_g: bool = True):
    """A random GIR system over addition mod 97 (commutative, exactly
    representable, atomic powers)."""
    op = modular_add(97)
    n = draw(st.integers(min_value=0, max_value=max_n))
    extra = draw(st.integers(min_value=1, max_value=max_extra))
    if distinct_g:
        m = n + extra
        perm = draw(st.permutations(list(range(m))))
        g = list(perm[:n])
    else:
        m = max(extra, 1)
        g = [draw(st.integers(min_value=0, max_value=m - 1)) for _ in range(n)]
    f = [draw(st.integers(min_value=0, max_value=m - 1)) for _ in range(n)]
    h = [draw(st.integers(min_value=0, max_value=m - 1)) for _ in range(n)]
    initial = [draw(st.integers(min_value=0, max_value=96)) for _ in range(m)]
    return GIRSystem.build(initial, g, f, h, op)


@st.composite
def fraction_values(draw, max_num: int = 6, max_den: int = 4):
    num = draw(st.integers(min_value=-max_num, max_value=max_num))
    den = draw(st.integers(min_value=1, max_value=max_den))
    return Fraction(num, den)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _fresh_plan_cache():
    """Isolate tests from the engine's process-wide plan cache.

    Span-shape and stats assertions expect *planning* solves; a plan
    cached by an earlier test (same index maps) would skip the planning
    phases and change what they observe.
    """
    from repro.engine import clear_plan_cache

    clear_plan_cache()
    yield
    clear_plan_cache()


@pytest.fixture(autouse=True)
def _fresh_breakers():
    """Isolate tests from the failover ladder's breaker registry.

    Breakers are keyed by problem fingerprint, and the test suite
    reuses small systems with identical index maps -- a breaker opened
    by one test's injected faults must not short-circuit another
    test's solve.
    """
    import dataclasses

    from repro.resilience.breaker import (
        BreakerConfig,
        configure_breakers,
        reset_breakers,
    )

    defaults = dataclasses.asdict(BreakerConfig())
    reset_breakers()
    configure_breakers(**defaults)
    yield
    reset_breakers()
    configure_breakers(**defaults)
