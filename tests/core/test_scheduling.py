"""Unit tests for Brent scheduling arithmetic."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.scheduling import (
    WorkDepth,
    brent_schedule,
    efficiency,
    fork_bounded_schedule,
    processor_sweep,
    speedup,
)


class TestWorkDepth:
    def test_brent_bound(self):
        wd = WorkDepth(work=100, depth=7)
        assert wd.brent_bound(10) == 17
        assert wd.brent_bound(1) == 107

    def test_lower_bound(self):
        wd = WorkDepth(work=100, depth=7)
        assert wd.lower_bound(10) == 10
        assert wd.lower_bound(100) == 7

    def test_rejects_bad_processors(self):
        wd = WorkDepth(10, 2)
        with pytest.raises(ValueError):
            wd.brent_bound(0)
        with pytest.raises(ValueError):
            wd.lower_bound(-1)

    @given(
        st.integers(1, 10_000),
        st.integers(1, 100),
        st.integers(1, 64),
    )
    def test_property_bounds_ordered(self, work, depth, p):
        wd = WorkDepth(work, depth)
        assert wd.lower_bound(p) <= wd.brent_bound(p)


class TestSchedules:
    def test_brent_schedule_exact(self):
        assert brent_schedule([10, 5, 1], processors=4) == 3 + 2 + 1
        assert brent_schedule([10, 5, 1], processors=1) == 16

    def test_zero_steps_skipped(self):
        assert brent_schedule([0, 0, 3], processors=2) == 2

    def test_fork_bounded_adds_per_step_overhead(self):
        plain = brent_schedule([8, 8], 4)
        forked = fork_bounded_schedule([8, 8], 4, fork_overhead=3)
        assert forked == plain + 2 * 3

    def test_rejects_bad_processors(self):
        with pytest.raises(ValueError):
            brent_schedule([1], 0)
        with pytest.raises(ValueError):
            fork_bounded_schedule([1], 0)

    @given(st.lists(st.integers(0, 1000), max_size=20), st.integers(1, 128))
    def test_property_monotone_in_processors(self, steps, p):
        assert brent_schedule(steps, p) >= brent_schedule(steps, p * 2)


class TestRatios:
    def test_speedup_and_efficiency(self):
        assert speedup(100, 25) == 4.0
        assert efficiency(100, 25, 8) == 0.5

    def test_speedup_rejects_zero(self):
        with pytest.raises(ValueError):
            speedup(10, 0)


class TestProcessorSweep:
    def test_powers_of_two(self):
        assert processor_sweep(8) == [1, 2, 4, 8]

    def test_endpoint_included(self):
        assert processor_sweep(10) == [1, 2, 4, 8, 10]

    def test_base(self):
        assert processor_sweep(27, base=3) == [1, 3, 9, 27]

    def test_rejects_bad_max(self):
        with pytest.raises(ValueError):
            processor_sweep(0)
