"""Tests for the vectorized affine Moebius engine and auto-dispatch."""

from fractions import Fraction

import numpy as np
import pytest

from repro.core.equations import IRValidationError
from repro.core.moebius import (
    AffineRecurrence,
    RationalRecurrence,
    run_moebius_sequential,
)
from .._legacy_solvers import solve_affine_numpy, solve_moebius


def random_affine(rng, n, m, self_term=False):
    perm = rng.permutation(m)[:n]
    f = rng.integers(0, m, size=n)
    return AffineRecurrence.build(
        rng.normal(size=m).tolist(),
        perm,
        f,
        (0.8 * rng.normal(size=n)).tolist(),
        rng.normal(size=n).tolist(),
        self_term=self_term,
    )


class TestFastPath:
    @pytest.mark.parametrize("self_term", [False, True])
    def test_bit_identical_to_object_engine(self, rng, self_term):
        for _ in range(15):
            n = int(rng.integers(1, 60))
            rec = random_affine(rng, n, n + int(rng.integers(0, 10)), self_term)
            obj, s_obj = solve_moebius(rec, engine="numpy", collect_stats=True)
            fast, s_fast = solve_affine_numpy(rec, collect_stats=True)
            assert obj == fast  # bit-identical floats
            assert s_obj.active_per_round == s_fast.active_per_round

    def test_matches_sequential(self, rng):
        rec = random_affine(rng, 120, 140)
        assert np.allclose(
            solve_affine_numpy(rec)[0], run_moebius_sequential(rec)
        )

    def test_rejects_rational(self):
        rec = RationalRecurrence.build(
            [1.0, 1.0], [1], [0], [1.0], [0.0], [1.0], [1.0]
        )
        with pytest.raises(IRValidationError, match="requires c = 0"):
            solve_affine_numpy(rec)

    def test_rejects_zero_d(self):
        rec = RationalRecurrence.build(
            [1.0, 1.0], [1], [0], [1.0], [0.0], [0.0], [0.0]
        )
        with pytest.raises(ZeroDivisionError):
            solve_affine_numpy(rec)

    def test_d_normalization(self, rng):
        # (a X + b) / d with d != 1: normalized into the pair form
        n = 30
        rec = RationalRecurrence.build(
            rng.normal(size=n + 1).tolist(),
            list(range(1, n + 1)),
            list(range(0, n)),
            rng.normal(size=n).tolist(),
            rng.normal(size=n).tolist(),
            [0.0] * n,
            rng.uniform(0.5, 2.0, n).tolist(),
        )
        got = solve_affine_numpy(rec)[0]
        assert np.allclose(got, run_moebius_sequential(rec))


class TestAutoDispatch:
    def test_auto_picks_fast_path_for_floats(self, rng):
        rec = random_affine(rng, 40, 50)
        a, _ = solve_moebius(rec, engine="auto")
        b, _ = solve_affine_numpy(rec)
        assert a == b

    def test_auto_keeps_object_engine_for_fractions(self):
        rec = AffineRecurrence.build(
            [Fraction(1), Fraction(2), Fraction(3)],
            [1, 2],
            [0, 1],
            [Fraction(1, 3), Fraction(2)],
            [Fraction(1), Fraction(0)],
        )
        out, _ = solve_moebius(rec)  # default engine is auto
        assert all(isinstance(v, Fraction) for v in out)  # exactness kept
        assert out == run_moebius_sequential(rec)

    def test_auto_keeps_object_engine_for_rational(self):
        rec = RationalRecurrence.build(
            [1.0] * 5,
            [1, 2, 3, 4],
            [0, 1, 2, 3],
            [1.0] * 4,
            [1.0] * 4,
            [1.0] * 4,
            [0.0] * 4,
        )
        out, _ = solve_moebius(rec)
        assert np.allclose(out, run_moebius_sequential(rec))

    def test_explicit_affine_engine(self, rng):
        rec = random_affine(rng, 20, 25)
        out, _ = solve_moebius(rec, engine="affine")
        assert np.allclose(out, run_moebius_sequential(rec))


class TestRationalFastPath:
    def _rational(self, rng, n, self_term=False):
        m = n + int(rng.integers(0, 8))
        perm = rng.permutation(m)[:n]
        f = rng.integers(0, m, size=n)
        return RationalRecurrence.build(
            rng.uniform(0.5, 2.0, m).tolist(),
            perm,
            f,
            rng.uniform(0.5, 2.0, n).tolist(),
            rng.uniform(0.0, 1.0, n).tolist(),
            rng.uniform(0.0, 0.5, n).tolist(),
            rng.uniform(0.5, 2.0, n).tolist(),
            self_term=self_term,
        )

    @pytest.mark.parametrize("self_term", [False, True])
    def test_bit_identical_to_object_engine(self, rng, self_term):
        from .._legacy_solvers import solve_rational_numpy

        for _ in range(10):
            rec = self._rational(rng, int(rng.integers(1, 50)), self_term)
            obj, s1 = solve_moebius(rec, engine="numpy", collect_stats=True)
            fast, s2 = solve_rational_numpy(rec, collect_stats=True)
            assert obj == fast
            assert s1.active_per_round == s2.active_per_round

    def test_auto_uses_rational_path_for_float_rational(self, rng):
        from .._legacy_solvers import solve_rational_numpy

        rec = self._rational(rng, 30)
        auto, _ = solve_moebius(rec, engine="auto")
        fast, _ = solve_rational_numpy(rec)
        assert auto == fast

    def test_degenerate_coefficient_maps(self):
        from .._legacy_solvers import solve_rational_numpy

        # det(M) = 0 coefficient matrices (constant maps) mid-chain
        rec = RationalRecurrence.build(
            [2.0, 3.0, 4.0],
            [1, 2],
            [0, 1],
            [2.0, 1.0],
            [1.0, 0.0],
            [4.0, 0.0],
            [2.0, 1.0],
        )
        a = solve_moebius(rec, engine="numpy")[0]
        b = solve_rational_numpy(rec)[0]
        assert a == b == run_moebius_sequential(rec)
