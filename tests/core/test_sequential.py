"""Unit tests for the sequential reference executors."""

from repro.core import ADD, CONCAT, GIRSystem, MUL, OrdinaryIRSystem
from repro.core.sequential import (
    assignment_history,
    iter_gir_states,
    iter_ordinary_states,
    run_gir,
    run_ordinary,
)


class TestRunOrdinary:
    def test_hand_example(self):
        # A = [1, 10, 100]; A[1] += A[0]; A[2] += A[1]
        sys_ = OrdinaryIRSystem.build([1, 10, 100], [1, 2], [0, 1], ADD)
        assert run_ordinary(sys_) == [1, 11, 111]

    def test_input_not_mutated(self):
        sys_ = OrdinaryIRSystem.build([1, 10, 100], [1, 2], [0, 1], ADD)
        run_ordinary(sys_)
        assert sys_.initial == [1, 10, 100]

    def test_forward_reference_reads_initial(self):
        # f(0) = 2 is assigned later (iteration 1): iteration 0 must
        # read the initial value.
        sys_ = OrdinaryIRSystem.build([1, 10, 100], [0, 2], [2, 1], ADD)
        # i=0: A[0] = A[2] + A[0] = 101 ; i=1: A[2] = A[1] + A[2] = 110
        assert run_ordinary(sys_) == [101, 10, 110]

    def test_empty_loop(self):
        sys_ = OrdinaryIRSystem.build([5, 6], [], [], ADD)
        assert run_ordinary(sys_) == [5, 6]

    def test_order_preserved_non_commutative(self):
        sys_ = OrdinaryIRSystem.build(
            [("a",), ("b",), ("c",)], [1, 2], [0, 1], CONCAT
        )
        assert run_ordinary(sys_) == [("a",), ("a", "b"), ("a", "b", "c")]


class TestRunGIR:
    def test_hand_example_fibonacci_mul(self):
        # A[i+2] = A[i+1] * A[i] with A = [2, 3, 1, 1]
        sys_ = GIRSystem.build([2, 3, 1, 1], [2, 3], [1, 2], [0, 1], MUL)
        assert run_gir(sys_) == [2, 3, 6, 18]

    def test_non_distinct_g_overwrites(self):
        sys_ = GIRSystem.build([1, 2], [0, 0], [1, 1], [1, 0], ADD)
        # i=0: A[0] = A[1]+A[1] = 4 ; i=1: A[0] = A[1]+A[0] = 6
        assert run_gir(sys_) == [6, 2]


class TestIterators:
    def test_ordinary_states_count_and_content(self):
        sys_ = OrdinaryIRSystem.build([1, 10, 100], [1, 2], [0, 1], ADD)
        states = list(iter_ordinary_states(sys_))
        assert states == [[1, 11, 100], [1, 11, 111]]

    def test_gir_states(self):
        sys_ = GIRSystem.build([2, 3, 1], [2], [0], [1], MUL)
        assert list(iter_gir_states(sys_)) == [[2, 3, 6]]

    def test_history_records_each_assignment(self):
        sys_ = GIRSystem.build([1, 2], [0, 0], [1, 1], [1, 0], ADD)
        hist = assignment_history(sys_)
        assert hist == [(0, 4), (0, 6)]
