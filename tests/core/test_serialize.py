"""Tests for IR-system serialization round-trips."""

import json

import pytest

from repro.core import (
    ADD,
    CONCAT,
    GIRSystem,
    OrdinaryIRSystem,
    modular_mul,
    run_gir,
    run_ordinary,
)
from repro.core.operators import make_operator
from repro.core.serialize import (
    dump_system,
    load_system,
    operator_from_name,
    operator_to_name,
    system_from_dict,
    system_to_dict,
)


class TestOperatorNames:
    def test_stock_round_trip(self):
        for name in ("add", "mul", "min", "max", "concat", "float_add"):
            op = operator_from_name(name)
            assert operator_to_name(op) == name

    def test_modular_round_trip(self):
        op = modular_mul(97)
        name = operator_to_name(op)
        restored = operator_from_name(name)
        assert restored(13, 17) == op(13, 17)
        assert restored.power(3, 10**20) == op.power(3, 10**20)

    def test_adhoc_operator_rejected(self):
        op = make_operator("custom", lambda x, y: x)
        with pytest.raises(ValueError, match="not serializable"):
            operator_to_name(op)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown operator"):
            operator_from_name("frobnicate")


class TestSystemRoundTrip:
    def test_ordinary_numeric(self):
        sys_ = OrdinaryIRSystem.build([1, 2, 3, 4], [1, 2], [0, 1], ADD)
        doc = system_to_dict(sys_)
        restored = system_from_dict(doc)
        assert isinstance(restored, OrdinaryIRSystem)
        assert run_ordinary(restored) == run_ordinary(sys_)

    def test_ordinary_tuple_values(self):
        sys_ = OrdinaryIRSystem.build(
            [("a",), ("b",), ("c",)], [1, 2], [0, 1], CONCAT
        )
        restored = system_from_dict(system_to_dict(sys_))
        assert restored.initial == sys_.initial
        assert run_ordinary(restored) == run_ordinary(sys_)

    def test_gir_round_trip(self):
        op = modular_mul(10**9 + 7)
        sys_ = GIRSystem.build([2, 3, 1, 1], [2, 3], [1, 2], [0, 1], op)
        restored = system_from_dict(system_to_dict(sys_))
        assert isinstance(restored, GIRSystem)
        assert run_gir(restored) == run_gir(sys_)

    def test_dict_is_json_clean(self):
        sys_ = OrdinaryIRSystem.build([1.5, 2.5], [1], [0], ADD)
        text = json.dumps(system_to_dict(sys_))
        assert "ordinary" in text

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown system kind"):
            system_from_dict(
                {"kind": "nope", "operator": "add", "initial": [], "g": [], "f": []}
            )

    def test_file_round_trip(self, tmp_path):
        sys_ = OrdinaryIRSystem.build(
            [("x",), ("y",), ("z",)], [1, 2], [0, 0], CONCAT
        )
        path = str(tmp_path / "system.json")
        dump_system(sys_, path)
        restored = load_system(path)
        assert run_ordinary(restored) == run_ordinary(sys_)


class TestPropertyRoundTrips:
    """Hypothesis: arbitrary generated systems survive serialization."""

    def test_random_ordinary_systems(self):
        from hypothesis import given, settings

        from ..conftest import ordinary_systems

        @given(ordinary_systems())
        @settings(max_examples=40)
        def inner(sys_):
            restored = system_from_dict(system_to_dict(sys_))
            assert run_ordinary(restored) == run_ordinary(sys_)
            assert restored.g.tolist() == sys_.g.tolist()
            assert restored.f.tolist() == sys_.f.tolist()

        inner()

    def test_random_gir_systems(self):
        from hypothesis import given, settings

        from ..conftest import gir_systems

        @given(gir_systems(distinct_g=False))
        @settings(max_examples=40)
        def inner(sys_):
            restored = system_from_dict(system_to_dict(sys_))
            assert run_gir(restored) == run_gir(sys_)

        inner()
