"""Unit tests for the IR system model and validation."""

import numpy as np
import pytest
from hypothesis import given

from repro.core import (
    ADD,
    CONCAT,
    GIRSystem,
    IRClass,
    IRValidationError,
    OrdinaryIRSystem,
    as_index_array,
    normalize_non_distinct,
    run_gir,
)
from repro.core.operators import make_operator, modular_add

from ..conftest import gir_systems


class TestIndexArrays:
    def test_from_sequence(self):
        arr = as_index_array([3, 1, 2], 3)
        assert arr.dtype == np.int64
        assert arr.tolist() == [3, 1, 2]

    def test_from_callable(self):
        arr = as_index_array(lambda i: 7 * i + 2, 4)
        assert arr.tolist() == [2, 9, 16, 23]

    def test_wrong_length_rejected(self):
        with pytest.raises(IRValidationError, match="exactly n=3"):
            as_index_array([1, 2], 3)


class TestOrdinaryValidation:
    def test_builds_and_validates(self):
        sys_ = OrdinaryIRSystem.build([("a",)] * 5, [1, 2], [0, 0], CONCAT)
        assert sys_.n == 2 and sys_.m == 5

    def test_callable_needs_n(self):
        with pytest.raises(IRValidationError, match="n is required"):
            OrdinaryIRSystem.build([1, 2, 3], lambda i: i, lambda i: i, ADD)

    def test_callable_with_n(self):
        sys_ = OrdinaryIRSystem.build(
            [1] * 6, lambda i: i + 1, lambda i: i, ADD, n=5
        )
        assert sys_.g.tolist() == [1, 2, 3, 4, 5]

    def test_domain_violation_rejected(self):
        with pytest.raises(IRValidationError, match="outside the array domain"):
            OrdinaryIRSystem.build([1, 2], [0, 5], [0, 0], ADD)

    def test_negative_index_rejected(self):
        with pytest.raises(IRValidationError, match="outside the array domain"):
            OrdinaryIRSystem.build([1, 2], [0, -1], [0, 0], ADD)

    def test_length_mismatch_rejected(self):
        sys_ = OrdinaryIRSystem(
            initial=[1, 2, 3],
            g=np.array([0, 1]),
            f=np.array([0]),
            op=ADD,
        )
        with pytest.raises(IRValidationError, match="equal length"):
            sys_.validate()

    def test_non_distinct_g_rejected_with_hint(self):
        with pytest.raises(IRValidationError, match="normalize_non_distinct"):
            OrdinaryIRSystem.build([1, 2, 3], [1, 1], [0, 0], ADD)

    def test_non_associative_operator_rejected(self):
        sub = make_operator("sub", lambda x, y: x - y, associative=False)
        with pytest.raises(Exception, match="not associative"):
            OrdinaryIRSystem.build([1, 2, 3], [1, 2], [0, 0], sub)

    def test_first_duplicate_cell(self):
        sys_ = OrdinaryIRSystem(
            initial=[1, 2, 3],
            g=np.array([2, 0, 2]),
            f=np.array([0, 0, 0]),
            op=ADD,
        )
        assert sys_.first_duplicate_cell() == 2
        assert not sys_.g_is_distinct()

    def test_as_gir_view(self):
        sys_ = OrdinaryIRSystem.build([1, 2, 3], [1, 2], [0, 1], ADD)
        gir = sys_.as_gir()
        assert isinstance(gir, GIRSystem)
        assert gir.is_ordinary_shaped()
        assert gir.h.tolist() == sys_.g.tolist()


class TestGIRValidation:
    def test_requires_h(self):
        with pytest.raises(IRValidationError, match="requires an h"):
            GIRSystem(initial=[1], g=np.array([0]), f=np.array([0]), op=ADD)

    def test_h_domain_checked(self):
        with pytest.raises(IRValidationError, match="h maps"):
            GIRSystem.build([1, 2], [0], [1], [9], ADD)

    def test_ordinary_shape_detection(self):
        sys_ = GIRSystem.build([1, 2, 3], [1], [0], [1], ADD)
        assert sys_.is_ordinary_shaped()
        sys2 = GIRSystem.build([1, 2, 3], [1], [0], [2], ADD)
        assert not sys2.is_ordinary_shaped()


class TestIRClass:
    def test_indexed_membership(self):
        assert IRClass.ORDINARY_IR.is_indexed()
        assert IRClass.GIR.is_indexed()
        assert IRClass.MOEBIUS_AFFINE.is_indexed()
        assert IRClass.MOEBIUS_RATIONAL.is_indexed()
        assert not IRClass.LINEAR.is_indexed()
        assert not IRClass.NO_RECURRENCE.is_indexed()
        assert not IRClass.UNSUPPORTED.is_indexed()


class TestNormalizeNonDistinct:
    def test_renamed_system_has_distinct_g(self):
        op = modular_add(97)
        sys_ = GIRSystem.build([1, 2], [0, 0, 1], [1, 0, 0], [0, 1, 0], op)
        norm = normalize_non_distinct(sys_)
        assert norm.system.g_is_distinct()
        assert norm.system.m == sys_.m + sys_.n

    def test_projection_matches_sequential(self):
        op = modular_add(97)
        sys_ = GIRSystem.build(
            [3, 5, 7], [0, 1, 0, 2, 0], [1, 0, 2, 0, 1], [2, 2, 1, 1, 0], op
        )
        norm = normalize_non_distinct(sys_)
        renamed_final = run_gir(norm.system)
        assert norm.project(renamed_final) == run_gir(sys_)

    def test_unassigned_cells_map_to_themselves(self):
        op = modular_add(97)
        sys_ = GIRSystem.build([1, 2, 3, 4], [1], [0], [0], op)
        norm = normalize_non_distinct(sys_)
        assert norm.final_cell_of.tolist()[0] == 0
        assert norm.final_cell_of.tolist()[2:] == [2, 3]
        assert norm.final_cell_of.tolist()[1] == sys_.m  # version cell

    @given(gir_systems(distinct_g=False))
    def test_property_renaming_preserves_semantics(self, sys_):
        norm = normalize_non_distinct(sys_)
        assert norm.system.g_is_distinct()
        assert norm.project(run_gir(norm.system)) == run_gir(sys_)
