"""Unit tests for the operator algebra."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.operators import (
    ADD,
    CONCAT,
    FLOAT_ADD,
    FLOAT_MUL,
    MAX,
    MIN,
    MUL,
    STOCK_OPERATORS,
    Operator,
    OperatorError,
    make_operator,
    modular_add,
    modular_mul,
)


class TestStockOperators:
    def test_add_basics(self):
        assert ADD(2, 3) == 5
        assert ADD.identity == 0
        assert ADD.commutative and ADD.associative

    def test_add_power_is_scaling(self):
        assert ADD.power(7, 5) == 35
        assert ADD.power(-3, 4) == -12

    def test_mul_power_is_exponentiation(self):
        assert MUL.power(3, 5) == 243
        assert MUL.power(2, 100) == 2**100  # exact big ints

    def test_min_max_idempotent_powers(self):
        assert MIN.power(4.5, 1000) == 4.5
        assert MAX.power(-2.0, 7) == -2.0

    def test_min_max_identities(self):
        assert MIN(MIN.identity, 5) == 5
        assert MAX(MAX.identity, 5) == 5

    def test_concat_non_commutative(self):
        assert CONCAT(("a",), ("b",)) == ("a", "b")
        assert not CONCAT.check_commutative_on([("a",), ("b",)])
        assert CONCAT.check_associative_on([("a",), ("b",), ("c",)])

    def test_concat_power(self):
        assert CONCAT.power(("x",), 3) == ("x", "x", "x")

    def test_float_mul_power_overflow_saturates(self):
        assert FLOAT_MUL.power(2.0, 10**6) == math.inf
        assert FLOAT_MUL.power(-2.0, 10**6 + 1) == -math.inf
        assert FLOAT_MUL.power(0.5, 10**6) == 0.0

    def test_float_add_power_overflow_saturates(self):
        assert FLOAT_ADD.power(1e300, 10**10) == math.inf
        assert FLOAT_ADD.power(-1e300, 10**10) == -math.inf

    def test_registry_contents(self):
        assert set(STOCK_OPERATORS) == {
            "add",
            "mul",
            "float_add",
            "float_mul",
            "min",
            "max",
            "concat",
        }

    def test_vector_fns_match_scalar(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([4.0, 0.5, 3.0])
        assert np.array_equal(FLOAT_ADD.vector_fn(a, b), a + b)
        assert np.array_equal(MIN.vector_fn(a, b), np.minimum(a, b))
        assert CONCAT.vector_fn is None


class TestModularOperators:
    def test_modular_add(self):
        op = modular_add(7)
        assert op(5, 4) == 2
        assert op.power(3, 10**30) == (3 * (10**30 % 7)) % 7

    def test_modular_mul_uses_builtin_pow(self):
        op = modular_mul(97)
        assert op(50, 60) == (50 * 60) % 97
        assert op.power(3, 10**30) == pow(3, 10**30, 97)

    def test_modular_requires_sane_modulus(self):
        with pytest.raises(ValueError):
            modular_add(1)
        with pytest.raises(ValueError):
            modular_mul(0)

    @given(st.integers(0, 96), st.integers(0, 96), st.integers(0, 96))
    def test_modular_add_associative(self, a, b, c):
        op = modular_add(97)
        assert op(op(a, b), c) == op(a, op(b, c))


class TestGenericPower:
    def test_default_power_repeated_squaring(self):
        op = make_operator("concat2", lambda x, y: x + y)
        assert op.power("ab", 4) == "abababab"
        assert op.power("x", 1) == "x"

    def test_power_rejects_nonpositive(self):
        op = make_operator("f", lambda x, y: x + y)
        with pytest.raises(OperatorError):
            op.power(1, 0)
        with pytest.raises(OperatorError):
            op.power(1, -3)

    @given(st.integers(1, 200), st.integers(-5, 5))
    def test_default_power_matches_addition(self, k, x):
        op = make_operator("plus", lambda a, b: a + b)
        assert op.power(x, k) == x * k


class TestRequirementChecks:
    def test_require_associative_raises(self):
        op = make_operator("sub", lambda x, y: x - y, associative=False)
        with pytest.raises(OperatorError, match="not associative"):
            op.require_associative()

    def test_require_commutative_raises(self):
        with pytest.raises(OperatorError, match="not commutative"):
            CONCAT.require_commutative()

    def test_spot_checks_detect_violations(self):
        sub = make_operator("sub", lambda x, y: x - y, associative=False)
        assert not sub.check_associative_on([1, 2, 3])
        assert not sub.check_commutative_on([1, 2])

    def test_operator_callable(self):
        assert MUL(6, 7) == 42
