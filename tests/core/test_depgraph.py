"""Unit tests for GIR dependence-graph construction (paper section 4)."""

import pytest

from repro.core import ADD, GIRSystem
from repro.core.depgraph import build_dependence_graph
from repro.core.equations import IRValidationError
from repro.core.operators import modular_add


def fib_graph(n=4):
    """The paper's Fig-6 recurrence ``A[i] = A[i-1] * A[i-2]``."""
    op = modular_add(97)
    sys_ = GIRSystem.build(
        [1] * (n + 2),
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        op,
    )
    return sys_, build_dependence_graph(sys_)


class TestConstruction:
    def test_first_iterations_point_at_leaves(self):
        sys_, g = fib_graph()
        n = g.n
        # iteration 0 reads cells 1 and 0, both unassigned: leaves
        assert g.target_f[0] == n + 1
        assert g.target_h[0] == n + 0

    def test_later_iterations_point_at_earlier_iterations(self):
        _, g = fib_graph()
        # iteration 2 reads cell 3 (written by it 1) and cell 2 (it 0)
        assert g.target_f[2] == 1
        assert g.target_h[2] == 0

    def test_forward_writes_resolve_to_leaves(self):
        # f reads a cell that is written *later*: must be a leaf edge
        op = modular_add(97)
        sys_ = GIRSystem.build([1, 2, 3], [0, 1], [1, 0], [2, 2], op)
        g = build_dependence_graph(sys_)
        assert g.target_f[0] == g.n + 1  # cell 1 written at it 1 > 0
        assert g.target_f[1] == 0  # cell 0 written at it 0 < 1

    def test_parallel_edges_merge_with_multiplicity(self):
        op = modular_add(97)
        sys_ = GIRSystem.build([5, 0], [1], [0], [0], op)  # A[1] = A[0]+A[0]
        g = build_dependence_graph(sys_)
        assert g.out_edges(0) == {g.n + 0: 2}

    def test_requires_distinct_g(self):
        op = modular_add(97)
        sys_ = GIRSystem.build([1, 2], [0, 0], [1, 1], [1, 1], op)
        with pytest.raises(IRValidationError, match="distinct g"):
            build_dependence_graph(sys_)

    def test_edge_count_and_edges_iter(self):
        _, g = fib_graph(4)
        assert g.edge_count() == 8  # two distinct targets per iteration
        assert len(list(g.edges())) == 8
        assert all(mult == 1 for _s, _t, mult in g.edges())


class TestNodeHelpers:
    def test_leaf_predicates(self):
        _, g = fib_graph()
        assert g.is_leaf(g.n)
        assert not g.is_leaf(0)
        assert g.leaf_cell(g.n + 3) == 3
        with pytest.raises(ValueError):
            g.leaf_cell(0)

    def test_labels(self):
        _, g = fib_graph()
        assert g.node_label(0) == "it0"
        assert g.node_label(g.n + 2) == "A0[2]"

    def test_leaves_listing(self):
        _, g = fib_graph()
        assert g.leaves() == [g.n + 0, g.n + 1]

    def test_depth_fibonacci_chain(self):
        for n in (1, 2, 5, 9):
            _, g = fib_graph(n)
            assert g.depth() == n

    def test_depth_empty(self):
        op = modular_add(97)
        sys_ = GIRSystem.build([1], [], [], [], op)
        assert build_dependence_graph(sys_).depth() == 0


class TestNetworkxExport:
    def test_export_matches_structure(self):
        nx = pytest.importorskip("networkx")
        _, g = fib_graph(5)
        gg = g.to_networkx()
        assert gg.number_of_nodes() == g.n + len(g.leaves())
        assert gg.number_of_edges() == g.edge_count()
        # DAG property
        assert nx.is_directed_acyclic_graph(gg)

    def test_networkx_path_counts_match_cap(self):
        nx = pytest.importorskip("networkx")
        from repro.core.cap import count_all_paths

        sys_, g = fib_graph(7)
        gg = g.to_networkx()
        cap = count_all_paths(g)
        for leaf in g.leaves():
            # count weighted paths from node n-1 to leaf by DFS
            total = 0
            for path in nx.all_simple_paths(gg, g.n - 1, leaf):
                w = 1
                for a, b in zip(path, path[1:]):
                    w *= gg[a][b]["weight"]
                total += w
            assert cap.powers[g.n - 1].get(leaf, 0) == total
