"""Unit tests for trace structures (Lemma 1, Figs 1/4/5)."""

import pytest
from hypothesis import given, settings

from repro.core import (
    ADD,
    CONCAT,
    GIRSystem,
    MUL,
    OrdinaryIRSystem,
    run_ordinary,
)
from repro.core.equations import IRValidationError
from repro.core.operators import modular_mul
from repro.core.traces import (
    Leaf,
    Node,
    all_ordinary_traces,
    chain_lengths,
    expand_tree_value,
    gir_trace_tree,
    leaf_counts,
    max_chain_length,
    ordinary_trace_factors,
    predecessor_array,
    render_factors,
    render_tree,
    tree_sizes,
    writer_map,
)

from ..conftest import ordinary_systems


def chain_system():
    """g(i) = i+1, f(i) = i over 5 iterations: one chain."""
    return OrdinaryIRSystem.build(
        [(c,) for c in "abcdef"], [1, 2, 3, 4, 5], [0, 1, 2, 3, 4], CONCAT
    )


class TestWriterAndPredecessors:
    def test_writer_map(self):
        sys_ = chain_system()
        w = writer_map(sys_.g, sys_.m)
        assert w.tolist() == [-1, 0, 1, 2, 3, 4]

    def test_predecessors_chain(self):
        assert predecessor_array(chain_system()).tolist() == [-1, 0, 1, 2, 3]

    def test_forward_reference_has_no_predecessor(self):
        # f points at cells written later: every iteration is terminal
        sys_ = OrdinaryIRSystem.build(
            [(c,) for c in "abcd"], [0, 1, 2], [1, 2, 3], CONCAT
        )
        assert predecessor_array(sys_).tolist() == [-1, -1, -1]

    def test_self_reference_is_terminal(self):
        sys_ = OrdinaryIRSystem.build([("a",), ("b",)], [0], [0], CONCAT)
        assert predecessor_array(sys_).tolist() == [-1]


class TestOrdinaryTraces:
    def test_chain_trace_factors(self):
        sys_ = chain_system()
        # trace of the last cell: [f(term), g(chain...)] = [0, 1, ..., 5]
        assert ordinary_trace_factors(sys_, 4) == [0, 1, 2, 3, 4, 5]

    def test_traces_reproduce_sequential_values(self):
        sys_ = chain_system()
        final = run_ordinary(sys_)
        for cell, factors in all_ordinary_traces(sys_).items():
            value = sys_.initial[factors[0]]
            for c in factors[1:]:
                value = value + sys_.initial[c]
            assert value == final[cell]

    @given(ordinary_systems())
    @settings(max_examples=60)
    def test_property_traces_match_sequential(self, sys_):
        final = run_ordinary(sys_)
        for cell, factors in all_ordinary_traces(sys_).items():
            value = sys_.initial[factors[0]]
            for c in factors[1:]:
                value = value + sys_.initial[c]
            assert value == final[cell]

    def test_chain_lengths_and_max(self):
        sys_ = chain_system()
        assert chain_lengths(sys_).tolist() == [1, 2, 3, 4, 5]
        assert max_chain_length(sys_) == 5

    def test_max_chain_empty(self):
        sys_ = OrdinaryIRSystem.build([1], [], [], ADD)
        assert max_chain_length(sys_) == 0

    def test_render(self):
        assert render_factors([0, 2], one_based=True) == "A[1]*A[3]"
        assert render_factors([0, 2]) == "A[0]*A[2]"

    def test_paper_fig1_loop_shape(self):
        # the literal Fig-1 loop ``A[i] := A[i+4]*A[i]`` (0-based):
        # every f target is written later, so all traces have length 2
        sys_ = OrdinaryIRSystem.build(
            [(j,) for j in range(12)],
            list(range(8)),
            [i + 4 for i in range(8)],
            CONCAT,
        )
        traces = all_ordinary_traces(sys_)
        assert all(len(factors) == 2 for factors in traces.values())
        assert traces[0] == [4, 0]
        # unassigned cells (8..11) keep initial values: not in traces
        assert set(traces) == set(range(8))


def fib_system(n, mod=10**9 + 7):
    op = modular_mul(mod)
    initial = [3, 5] + [1] * n
    return GIRSystem.build(
        initial,
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        op,
    )


class TestGIRTrees:
    def test_tree_structure_small(self):
        sys_ = fib_system(2)
        tree = gir_trace_tree(sys_, 1)
        assert isinstance(tree, Node)
        assert isinstance(tree.left, Node)  # iteration 0
        assert isinstance(tree.right, Leaf) and tree.right.cell == 1

    def test_tree_sharing_is_a_dag(self):
        sys_ = fib_system(3)
        t = gir_trace_tree(sys_, 2)
        # node for iteration 1 is shared between t.left and t.right? No:
        # left = it1, right = it0; it1.left = it0 -- shared object
        assert t.left.left is t.right

    def test_tree_sizes_fibonacci(self):
        sys_ = fib_system(10)
        sizes = tree_sizes(sys_)
        fib = [1, 1]
        for _ in range(12):
            fib.append(fib[-1] + fib[-2])
        # size of iteration i = fib(i+3)? check: it0 combines two
        # leaves -> 2 = fib(3); it1 -> 3 = fib(4)...
        assert sizes == [fib[i + 2] for i in range(10)]

    def test_leaf_counts_are_fibonacci_powers(self):
        sys_ = fib_system(12)
        counts = leaf_counts(sys_)
        fib = [1, 1]
        for _ in range(14):
            fib.append(fib[-1] + fib[-2])
        assert counts[11] == {0: fib[11], 1: fib[12]}

    def test_expand_tree_value_matches_sequential(self):
        from repro.core.sequential import run_gir

        sys_ = fib_system(8)
        final = run_gir(sys_)
        tree = gir_trace_tree(sys_, 7)
        assert expand_tree_value(tree, sys_.initial, sys_.op) == final[9]

    def test_expand_handles_deep_chains(self):
        # a pure chain 3000 deep would break naive recursion
        n = 3000
        op = modular_mul(97)
        sys_ = GIRSystem.build(
            [2] + [1] * n,
            [i + 1 for i in range(n)],
            [i for i in range(n)],
            [i for i in range(n)],
            op,
        )
        from repro.core.sequential import run_gir

        tree = gir_trace_tree(sys_, n - 1)
        assert expand_tree_value(tree, sys_.initial, sys_.op) == run_gir(sys_)[n]

    def test_render_tree(self):
        sys_ = fib_system(1)
        assert render_tree(gir_trace_tree(sys_, 0)) == "(A[1]*A[0])"

    def test_requires_distinct_g(self):
        sys_ = GIRSystem.build([1, 2], [0, 0], [1, 1], [1, 1], ADD)
        with pytest.raises(IRValidationError, match="distinct g"):
            gir_trace_tree(sys_, 0)
        with pytest.raises(IRValidationError, match="distinct g"):
            tree_sizes(sys_)

    def test_leaf_counts_match_expansion_elementwise(self):
        sys_ = fib_system(6)
        counts = leaf_counts(sys_)
        sizes = tree_sizes(sys_)
        for i in range(6):
            assert sum(counts[i].values()) == sizes[i]
