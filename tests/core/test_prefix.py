"""Tests for the prefix/scan layer built on the IR machinery."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.operators import ADD, CONCAT, FLOAT_ADD, MAX, MIN, MUL
from repro.core.prefix import (
    exclusive_scan,
    lift_segmented,
    linear_recurrence,
    prefix_scan,
    segmented_scan,
)


class TestPrefixScan:
    def test_hand_example(self):
        out, _ = prefix_scan([1, 2, 3, 4], ADD)
        assert out == [1, 3, 6, 10]

    def test_matches_numpy_cumsum(self, rng):
        vals = rng.integers(-50, 50, size=200).tolist()
        out, _ = prefix_scan(vals, ADD)
        assert out == np.cumsum(vals).tolist()

    def test_non_commutative_order(self):
        out, _ = prefix_scan([("a",), ("b",), ("c",)], CONCAT)
        assert out == [("a",), ("a", "b"), ("a", "b", "c")]

    def test_running_min_max(self, rng):
        vals = rng.normal(size=100).tolist()
        mins, _ = prefix_scan(vals, MIN)
        maxs, _ = prefix_scan(vals, MAX)
        assert mins == np.minimum.accumulate(vals).tolist()
        assert maxs == np.maximum.accumulate(vals).tolist()

    @pytest.mark.parametrize("n", [0, 1, 2])
    def test_tiny_inputs(self, n):
        vals = list(range(1, n + 1))
        out, _ = prefix_scan(vals, ADD)
        assert out == np.cumsum(vals).tolist() if n else out == []

    def test_engines_agree(self, rng):
        vals = rng.integers(0, 9, size=64).tolist()
        a, _ = prefix_scan(vals, ADD, engine="numpy")
        b, _ = prefix_scan(vals, ADD, engine="python")
        assert a == b

    def test_logarithmic_rounds(self):
        _, stats = prefix_scan(list(range(1024)), ADD, collect_stats=True)
        assert stats.rounds == 10

    @given(st.lists(st.integers(-100, 100), max_size=50))
    @settings(max_examples=60)
    def test_property_matches_cumsum(self, vals):
        out, _ = prefix_scan(vals, ADD)
        assert out == np.cumsum(vals).tolist() if vals else out == []


class TestExclusiveScan:
    def test_hand_example(self):
        assert exclusive_scan([1, 2, 3], ADD) == [0, 1, 3]

    def test_requires_identity(self):
        from repro.core.operators import make_operator

        op = make_operator("noid", lambda x, y: x + y)
        with pytest.raises(ValueError, match="identity"):
            exclusive_scan([1, 2], op)

    def test_mul_identity(self):
        assert exclusive_scan([2, 3, 4], MUL) == [1, 2, 6]


class TestSegmentedScan:
    def test_hand_example(self):
        out = segmented_scan(
            [1, 2, 3, 4, 5], [True, False, True, False, False], ADD
        )
        assert out == [1, 3, 3, 7, 12]

    def test_no_flags_equals_plain_scan(self, rng):
        vals = rng.integers(0, 10, size=40).tolist()
        out = segmented_scan(vals, [False] * 40, ADD)
        assert out == np.cumsum(vals).tolist()

    def test_all_flags_is_identity_map(self):
        vals = [5, 6, 7]
        assert segmented_scan(vals, [True] * 3, ADD) == vals

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            segmented_scan([1], [True, False], ADD)

    def test_empty(self):
        assert segmented_scan([], [], ADD) == []

    @given(
        st.lists(
            st.tuples(st.integers(-20, 20), st.booleans()), max_size=40
        )
    )
    @settings(max_examples=60)
    def test_property_matches_sequential_restarts(self, pairs):
        vals = [v for v, _f in pairs]
        flags = [f for _v, f in pairs]
        got = segmented_scan(vals, flags, ADD)
        expect = []
        acc = 0
        for i, (v, f) in enumerate(pairs):
            acc = v if (f or i == 0) else acc + v
            expect.append(acc)
        assert got == expect

    def test_lifted_operator_is_associative(self):
        lifted = lift_segmented(ADD)
        samples = [(1, False), (2, True), (3, False), (4, True)]
        assert lifted.check_associative_on(samples)


class TestLinearRecurrence:
    def test_hand_example(self):
        # x[i] = 2*x[i-1] + 1, x0 = 0 -> 1, 3, 7, 15
        out = linear_recurrence([2, 2, 2, 2], [1, 1, 1, 1], 0)
        assert out == [1, 3, 7, 15]

    def test_matches_sequential(self, rng):
        n = 80
        a = (0.5 * rng.normal(size=n)).tolist()
        b = rng.normal(size=n).tolist()
        x0 = 2.0
        got = linear_recurrence(a, b, x0)
        cur = x0
        for i in range(n):
            cur = a[i] * cur + b[i]
            assert got[i] == pytest.approx(cur, rel=1e-9)

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            linear_recurrence([1.0], [1.0, 2.0], 0.0)

    def test_empty(self):
        assert linear_recurrence([], [], 1.0) == []
