"""Unit and property tests for the Moebius reduction (paper section 3)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    AffineRecurrence,
    Mat2,
    RationalRecurrence,
    moebius_compose,
    moebius_ir_operator,
    run_moebius_sequential,
)
from repro.core.equations import IRValidationError

from ..conftest import fraction_values
from .._legacy_solvers import solve_moebius


class TestMat2:
    def test_identity(self):
        ident = Mat2.identity()
        m = Mat2(2, 3, 5, 7)
        assert ident.matmul(m) == m
        assert m.matmul(ident) == m

    def test_affine_and_apply(self):
        m = Mat2.affine(2, 3)
        assert m.apply(10) == 23
        assert m.det() == 2

    def test_constant_is_singular(self):
        c = Mat2.constant(42)
        assert c.det() == 0
        assert c.is_constant_map()
        assert c.constant_value() == 42
        assert c.apply(123456.0) == 42

    def test_rank_one_constant_value(self):
        # (2x+1)/(4x+2) = 1/2 everywhere
        m = Mat2(2, 1, 4, 2)
        assert m.is_constant_map()
        assert m.constant_value() == pytest.approx(0.5)

    def test_constant_value_rejects_nonsingular(self):
        with pytest.raises(ValueError, match="not a constant map"):
            Mat2(1, 0, 0, 1).constant_value()

    def test_constant_value_with_zero_d(self):
        # rank-1 with d == 0: falls back to evaluation at 1
        m = Mat2(0, 0, 1, 0)  # map x -> 0/x = 0 (x != 0)
        assert m.constant_value() == 0

    def test_matmul_hand_example(self):
        a = Mat2(1, 2, 3, 4)
        b = Mat2(5, 6, 7, 8)
        assert a.matmul(b) == Mat2(19, 22, 43, 50)


class TestCompose:
    def test_constant_absorbs_on_left(self):
        c = Mat2.constant(9)
        m = Mat2(1, 2, 3, 4)
        assert moebius_compose(c, m) == c

    def test_nonsingular_composes(self):
        a = Mat2.affine(2, 0)
        b = Mat2.affine(1, 5)
        # (2x) o (x+5) = 2x + 10
        assert moebius_compose(a, b) == Mat2.affine(2, 10)

    def test_compose_then_constant_stays_constant(self):
        m = Mat2.affine(3, 1)
        c = Mat2.constant(2)
        out = moebius_compose(m, c)
        assert out.is_constant_map()
        assert out.constant_value() == 7  # 3*2 + 1

    small = st.integers(min_value=-2, max_value=2)

    @given(small, small, small, small, small, small, small, small, small, small, small, small)
    @settings(max_examples=300)
    def test_property_associativity(self, a, b, c, d, e, f, g, h, i, j, k, l):
        A, B, C = Mat2(a, b, c, d), Mat2(e, f, g, h), Mat2(i, j, k, l)
        assert moebius_compose(moebius_compose(A, B), C) == moebius_compose(
            A, moebius_compose(B, C)
        )

    def test_ir_operator_flags(self):
        op = moebius_ir_operator()
        assert op.associative and not op.commutative
        assert op.identity == Mat2.identity()
        # op(f_segment, own_segment) composes own over f
        own, fseg = Mat2.affine(2, 0), Mat2.constant(3)
        assert op(fseg, own) == moebius_compose(own, fseg)


def random_affine(rng, n, m, self_term, exact=True):
    perm = rng.permutation(m)[:n]
    f = rng.integers(0, m, size=n)
    if exact:
        S = [Fraction(int(v), int(q)) for v, q in zip(
            rng.integers(-5, 6, size=m), rng.integers(1, 5, size=m))]
        a = [Fraction(int(v)) for v in rng.integers(-3, 4, size=n)]
        b = [Fraction(int(v)) for v in rng.integers(-3, 4, size=n)]
    else:
        S = rng.normal(size=m).tolist()
        a = rng.normal(size=n).tolist()
        b = rng.normal(size=n).tolist()
    return AffineRecurrence.build(S, perm, f, a, b, self_term=self_term)


class TestAffineSolve:
    @pytest.mark.parametrize("self_term", [False, True])
    @pytest.mark.parametrize("engine", ["python", "numpy"])
    def test_exact_fraction_equivalence(self, self_term, engine, rng):
        for _ in range(25):
            n = int(rng.integers(1, 20))
            m = n + int(rng.integers(0, 8))
            rec = random_affine(rng, n, m, self_term)
            assert solve_moebius(rec, engine=engine)[0] == run_moebius_sequential(rec)

    def test_zero_coefficient_constant_assignment(self):
        # a = 0 makes the map constant: X[g] := b
        rec = AffineRecurrence.build(
            [Fraction(1), Fraction(2), Fraction(3)],
            g=[1, 2],
            f=[0, 1],
            a=[Fraction(0), Fraction(2)],
            b=[Fraction(7), Fraction(1)],
        )
        assert solve_moebius(rec)[0] == run_moebius_sequential(rec)

    def test_float_path(self, rng):
        rec = random_affine(rng, 50, 60, True, exact=False)
        got = solve_moebius(rec)[0]
        ref = run_moebius_sequential(rec)
        assert np.allclose(got, ref)

    def test_livermore23_fragment_shape(self):
        # the paper's example: X[g] := X[g] + 0.175*(Y + X[f]*Z)
        # expressed with self_term and coefficients a = 0.175*Z,
        # b = 0.175*Y
        rng = np.random.default_rng(2)
        n = 40
        S = rng.normal(size=n + 1).tolist()
        Y = rng.normal(size=n).tolist()
        Z = rng.normal(size=n).tolist()
        rec = AffineRecurrence.build(
            S,
            g=list(range(1, n + 1)),
            f=list(range(0, n)),
            a=[0.175 * z for z in Z],
            b=[0.175 * y for y in Y],
            self_term=True,
        )
        assert np.allclose(
            solve_moebius(rec)[0], run_moebius_sequential(rec)
        )


class TestRationalSolve:
    def test_exact_rational_with_self_term(self, rng):
        done = 0
        while done < 20:
            n = int(rng.integers(1, 12))
            m = n + int(rng.integers(0, 6))
            perm = rng.permutation(m)[:n]
            f = rng.integers(0, m, size=n)
            S = [Fraction(int(v)) for v in rng.integers(1, 7, size=m)]
            a = [Fraction(int(v)) for v in rng.integers(1, 4, size=n)]
            b = [Fraction(int(v)) for v in rng.integers(0, 4, size=n)]
            c = [Fraction(int(v)) for v in rng.integers(0, 2, size=n)]
            d = [Fraction(int(v)) for v in rng.integers(1, 4, size=n)]
            for self_term in (False, True):
                rec = RationalRecurrence.build(
                    S, perm, f, a, b, c, d, self_term=self_term
                )
                try:
                    ref = run_moebius_sequential(rec)
                except ZeroDivisionError:
                    continue
                assert solve_moebius(rec)[0] == ref
                done += 1

    def test_continued_fraction_converges_to_golden_ratio(self):
        # x_{k+1} = 1 + 1/x_k -> golden ratio
        n = 40
        rec = RationalRecurrence.build(
            [1.0] * (n + 1),
            g=list(range(1, n + 1)),
            f=list(range(0, n)),
            a=[1.0] * n,
            b=[1.0] * n,
            c=[1.0] * n,
            d=[0.0] * n,
        )
        got = solve_moebius(rec)[0]
        ref = run_moebius_sequential(rec)
        assert np.allclose(got, ref)
        assert got[-1] == pytest.approx((1 + 5**0.5) / 2, rel=1e-9)


class TestValidation:
    def test_non_distinct_g_rejected(self):
        with pytest.raises(IRValidationError, match="distinct g"):
            AffineRecurrence.build([1, 2], [0, 0], [1, 1], [1, 1], [0, 0])

    def test_coefficient_length_checked(self):
        with pytest.raises(IRValidationError, match="coefficient a"):
            AffineRecurrence.build([1, 2], [0], [1], [1, 2], [0], n=1)

    def test_domain_checked(self):
        with pytest.raises(IRValidationError, match="maps outside"):
            AffineRecurrence.build([1, 2], [5], [1], [1], [0])

    def test_unknown_engine(self):
        rec = AffineRecurrence.build([1.0, 2.0], [1], [0], [1.0], [0.0])
        with pytest.raises(ValueError, match="unknown engine"):
            solve_moebius(rec, engine="fortran")
