"""Structural property tests for Lemma 1 (the paper's trace lemma).

Lemma 1 states that the trace of ``A'[g(i)]`` is determined by the
chain ``i = j_0 > j_1 > ... > j_k`` where each ``j_t`` is the *last*
iteration before ``j_{t-1}`` with ``g(j_t) = f(j_{t-1})`` and the
terminal ``j_k`` has no such predecessor.  These tests verify exactly
those structural claims on random systems -- independent of the value
computations the other test files cover.
"""

from hypothesis import given, settings

from repro.core.traces import (
    ordinary_trace_factors,
    predecessor_array,
    writer_map,
)

from ..conftest import ordinary_systems


@given(ordinary_systems())
@settings(max_examples=80)
def test_chain_indices_strictly_decrease(sys_):
    pred = predecessor_array(sys_)
    for i in range(sys_.n):
        j = i
        while pred[j] >= 0:
            assert pred[j] < j  # j_t < j_{t-1}
            j = int(pred[j])


@given(ordinary_systems())
@settings(max_examples=80)
def test_chain_links_satisfy_g_equals_f(sys_):
    pred = predecessor_array(sys_)
    for i in range(sys_.n):
        j = i
        while pred[j] >= 0:
            p = int(pred[j])
            # g(j_t) = f(j_{t-1})
            assert int(sys_.g[p]) == int(sys_.f[j])
            j = p


@given(ordinary_systems())
@settings(max_examples=80)
def test_predecessor_is_the_last_matching_iteration(sys_):
    """``j_k`` is maximal: no iteration strictly between pred[i] and i
    writes ``f(i)`` (with distinct g there is at most one writer at
    all, so 'last' and 'unique' coincide -- verified explicitly)."""
    pred = predecessor_array(sys_)
    g = sys_.g.tolist()
    f = sys_.f.tolist()
    for i in range(sys_.n):
        writers = [j for j in range(i) if g[j] == f[i]]
        if writers:
            assert pred[i] == max(writers)
        else:
            assert pred[i] == -1


@given(ordinary_systems())
@settings(max_examples=80)
def test_terminal_has_no_earlier_writer(sys_):
    """The paper: "there is no j_{k+1} < j_k such that
    g(j_{k+1}) = f(j_k)"."""
    pred = predecessor_array(sys_)
    g = sys_.g.tolist()
    f = sys_.f.tolist()
    for i in range(sys_.n):
        j = i
        while pred[j] >= 0:
            j = int(pred[j])
        assert all(g[t] != f[j] for t in range(j))


@given(ordinary_systems())
@settings(max_examples=60)
def test_trace_factor_list_matches_lemma_shape(sys_):
    """factors = [f(j_k), g(j_k), ..., g(j_1), g(j_0)]."""
    pred = predecessor_array(sys_)
    for i in range(sys_.n):
        chain = [i]
        while pred[chain[-1]] >= 0:
            chain.append(int(pred[chain[-1]]))
        factors = ordinary_trace_factors(sys_, i, pred)
        assert len(factors) == len(chain) + 1
        assert factors[0] == int(sys_.f[chain[-1]])
        for pos, j in enumerate(reversed(chain)):
            assert factors[pos + 1] == int(sys_.g[j])


@given(ordinary_systems())
@settings(max_examples=60)
def test_writer_map_inverts_g(sys_):
    writer = writer_map(sys_.g, sys_.m)
    for i in range(sys_.n):
        assert writer[int(sys_.g[i])] == i
    assigned = set(sys_.g.tolist())
    for cell in range(sys_.m):
        if cell not in assigned:
            assert writer[cell] == -1
