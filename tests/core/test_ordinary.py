"""Unit and property tests for the OrdinaryIR pointer-jumping solver."""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    ADD,
    CONCAT,
    FLOAT_MUL,
    MIN,
    OrdinaryIRSystem,
    run_ordinary,
)
from repro.core.traces import max_chain_length

from ..conftest import ordinary_systems
from .._legacy_solvers import solve_ordinary, solve_ordinary_numpy


def chain(n, op=CONCAT):
    initial = [(f"s{j}",) for j in range(n + 1)]
    return OrdinaryIRSystem.build(
        initial, list(range(1, n + 1)), list(range(n)), op
    )


class TestCorrectness:
    def test_single_chain(self):
        sys_ = chain(9)
        expect = run_ordinary(sys_)
        assert solve_ordinary(sys_)[0] == expect
        assert solve_ordinary_numpy(sys_)[0] == expect

    def test_unassigned_cells_preserved(self):
        sys_ = OrdinaryIRSystem.build(
            [(c,) for c in "abcde"], [1], [0], CONCAT
        )
        out, _ = solve_ordinary(sys_)
        assert out[2:] == [("c",), ("d",), ("e",)]

    def test_empty_system(self):
        sys_ = OrdinaryIRSystem.build([("a",)], [], [], CONCAT)
        assert solve_ordinary(sys_)[0] == [("a",)]
        assert solve_ordinary_numpy(sys_)[0] == [("a",)]

    def test_single_iteration(self):
        sys_ = OrdinaryIRSystem.build([("a",), ("b",)], [1], [0], CONCAT)
        assert solve_ordinary(sys_)[0] == [("a",), ("a", "b")]

    def test_self_reference(self):
        # f(i) == g(i): the own cell is squared from its initial value
        sys_ = OrdinaryIRSystem.build([3.0, 5.0], [1], [1], FLOAT_MUL)
        assert solve_ordinary(sys_)[0] == [3.0, 25.0]

    def test_shared_predecessor_tree(self):
        # two chains hang off the same predecessor cell (CREW reads)
        sys_ = OrdinaryIRSystem.build(
            [(c,) for c in "abcd"], [1, 2, 3], [0, 1, 1], CONCAT
        )
        expect = run_ordinary(sys_)
        assert solve_ordinary(sys_)[0] == expect
        assert solve_ordinary_numpy(sys_)[0] == expect

    def test_min_operator_typed_path(self):
        rng = np.random.default_rng(0)
        n = 200
        vals = rng.normal(size=n + 1).tolist()
        sys_ = OrdinaryIRSystem.build(
            vals, list(range(1, n + 1)), list(range(n)), MIN
        )
        expect = run_ordinary(sys_)
        got, _ = solve_ordinary_numpy(sys_)
        assert got == expect

    @given(ordinary_systems())
    @settings(max_examples=80)
    def test_property_python_engine_matches_sequential(self, sys_):
        assert solve_ordinary(sys_)[0] == run_ordinary(sys_)

    @given(ordinary_systems())
    @settings(max_examples=80)
    def test_property_numpy_engine_matches_sequential(self, sys_):
        assert solve_ordinary_numpy(sys_)[0] == run_ordinary(sys_)

    @given(ordinary_systems())
    @settings(max_examples=50)
    def test_property_engines_agree_on_stats(self, sys_):
        _, s1 = solve_ordinary(sys_, collect_stats=True)
        _, s2 = solve_ordinary_numpy(sys_, collect_stats=True)
        assert s1.rounds == s2.rounds
        assert s1.active_per_round == s2.active_per_round
        assert s1.init_ops == s2.init_ops


class TestRoundBounds:
    def test_rounds_logarithmic_in_chain_length(self):
        for n in (1, 2, 3, 7, 8, 9, 100, 1000):
            sys_ = chain(n)
            _, stats = solve_ordinary_numpy(sys_, collect_stats=True)
            L = max_chain_length(sys_)
            assert stats.rounds == max(0, math.ceil(math.log2(L)))

    def test_no_rounds_when_all_terminal(self):
        # every f target is unassigned: all traces complete at init
        sys_ = OrdinaryIRSystem.build(
            [(c,) for c in "abcdef"], [0, 1, 2], [3, 4, 5], CONCAT
        )
        _, stats = solve_ordinary(sys_, collect_stats=True)
        assert stats.rounds == 0
        assert stats.init_ops == 3

    def test_active_counts_shrink(self):
        sys_ = chain(64)
        _, stats = solve_ordinary(sys_, collect_stats=True)
        assert stats.active_per_round == sorted(
            stats.active_per_round, reverse=True
        )

    def test_max_rounds_truncates(self):
        sys_ = chain(16)
        out_partial, stats = solve_ordinary(
            sys_, collect_stats=True, max_rounds=1
        )
        assert stats.rounds == 1
        assert out_partial != run_ordinary(sys_)

    def test_work_is_n_log_n_at_most(self):
        n = 256
        sys_ = chain(n)
        _, stats = solve_ordinary_numpy(sys_, collect_stats=True)
        assert stats.total_ops <= n * math.ceil(math.log2(n)) + n
        assert stats.depth == stats.rounds + 1


class TestFInitial:
    def test_terminals_read_alternate_array(self):
        sys_ = OrdinaryIRSystem.build(
            [("a",), ("b",), ("c",)], [1, 2], [0, 1], CONCAT
        )
        alt = [("A",), ("B",), ("C",)]
        out, _ = solve_ordinary(sys_, f_initial=alt)
        # terminal (iteration 0) reads alt[0]; chain factors stay initial
        assert out == [("a",), ("A", "b"), ("A", "b", "c")]

    def test_numpy_engine_agrees_on_f_initial(self):
        sys_ = OrdinaryIRSystem.build(
            [("a",), ("b",), ("c",), ("d",)], [1, 3, 2], [0, 2, 1], CONCAT
        )
        alt = [(x,) for x in "WXYZ"]
        a, _ = solve_ordinary(sys_, f_initial=alt)
        b, _ = solve_ordinary_numpy(sys_, f_initial=alt)
        assert a == b
