"""Tests for the related-work baseline algorithms."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baselines import (
    blelloch_scan,
    kogge_stone_scan,
    recursive_doubling_linear,
    sequential_scan,
)
from repro.core.operators import ADD, CONCAT
from repro.core.prefix import prefix_scan


class TestScanBaselines:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 7, 8, 9, 100])
    def test_all_scans_agree(self, n, rng):
        vals = rng.integers(-9, 9, size=n).tolist()
        ref, _ = sequential_scan(vals, ADD)
        assert kogge_stone_scan(vals, ADD)[0] == ref
        assert blelloch_scan(vals, ADD)[0] == ref
        assert prefix_scan(vals, ADD)[0] == ref

    def test_non_commutative_safe(self):
        vals = [(c,) for c in "abcdefg"]
        ref, _ = sequential_scan(vals, CONCAT)
        assert kogge_stone_scan(vals, CONCAT)[0] == ref
        assert blelloch_scan(vals, CONCAT)[0] == ref

    def test_work_depth_tradeoffs(self):
        n = 256
        vals = list(range(n))
        _, seq = sequential_scan(vals, ADD)
        _, ks = kogge_stone_scan(vals, ADD)
        _, bl = blelloch_scan(vals, ADD)
        # sequential: minimal work, linear depth
        assert seq.ops == n - 1 and seq.depth == n - 1
        # Kogge-Stone: log depth, n log n work
        assert ks.depth == int(math.log2(n))
        assert ks.ops > 3 * n
        # Blelloch: ~3n work, 2 log n + 1 depth
        assert bl.ops <= 3 * n
        assert bl.depth == 2 * int(math.log2(n)) + 1

    def test_blelloch_requires_identity(self):
        from repro.core.operators import make_operator

        op = make_operator("noid", lambda x, y: x + y)
        with pytest.raises(ValueError, match="identity"):
            blelloch_scan([1, 2], op)

    @given(st.lists(st.integers(-50, 50), max_size=64))
    @settings(max_examples=60)
    def test_property_baselines_agree(self, vals):
        ref, _ = sequential_scan(vals, ADD)
        assert kogge_stone_scan(vals, ADD)[0] == ref
        assert blelloch_scan(vals, ADD)[0] == ref


class TestRecursiveDoubling:
    def test_matches_sequential(self, rng):
        n = 100
        a = (0.5 * rng.normal(size=n)).tolist()
        b = rng.normal(size=n).tolist()
        got, stats = recursive_doubling_linear(a, b, 1.5)
        cur = 1.5
        for i in range(n):
            cur = a[i] * cur + b[i]
            assert got[i] == pytest.approx(cur, rel=1e-8)
        assert stats.depth == math.ceil(math.log2(n)) + 1

    def test_agrees_with_moebius_solver(self, rng):
        from repro.core.prefix import linear_recurrence

        n = 64
        a = (0.3 * rng.normal(size=n)).tolist()
        b = rng.normal(size=n).tolist()
        assert np.allclose(
            recursive_doubling_linear(a, b, 0.7)[0],
            linear_recurrence(a, b, 0.7),
        )

    def test_empty_and_mismatch(self):
        assert recursive_doubling_linear([], [], 1.0)[0] == []
        with pytest.raises(ValueError):
            recursive_doubling_linear([1.0], [], 1.0)

    def test_work_is_nlogn(self):
        n = 128
        _, stats = recursive_doubling_linear([1.0] * n, [0.0] * n, 1.0)
        assert n * math.log2(n) < stats.ops < 4 * n * math.log2(n)


class TestWorkEfficientChainSolve:
    def test_matches_pointer_jumping_on_forests(self, rng):
        from repro.core import CONCAT, OrdinaryIRSystem, run_ordinary
        from repro.core.baselines import work_efficient_chain_solve
        from repro.core.workloads import forest_system

        base = forest_system([5, 1, 9, 3, 0, 7])
        system = OrdinaryIRSystem.build(
            [(f"s{j}",) for j in range(base.m)], base.g, base.f, CONCAT
        )
        out, stats = work_efficient_chain_solve(system)
        assert out == run_ordinary(system)
        assert stats.ops <= 4 * system.n

    def test_shared_initial_cells_are_fine(self):
        from repro.core import CONCAT, OrdinaryIRSystem, run_ordinary
        from repro.core.baselines import work_efficient_chain_solve

        system = OrdinaryIRSystem.build(
            [("a",), ("b",), ("c",)], [1, 2], [0, 0], CONCAT
        )
        out, _ = work_efficient_chain_solve(system)
        assert out == run_ordinary(system)

    def test_branching_rejected(self):
        from repro.core import CONCAT, OrdinaryIRSystem
        from repro.core.baselines import work_efficient_chain_solve

        system = OrdinaryIRSystem.build(
            [(c,) for c in "abcd"], [1, 2, 3], [0, 1, 1], CONCAT
        )
        with pytest.raises(ValueError, match="branching"):
            work_efficient_chain_solve(system)

    def test_identity_required(self):
        from repro.core import OrdinaryIRSystem
        from repro.core.baselines import work_efficient_chain_solve
        from repro.core.operators import make_operator

        op = make_operator("noid", lambda x, y: x + y)
        system = OrdinaryIRSystem.build([1, 2], [1], [0], op)
        with pytest.raises(ValueError, match="identity"):
            work_efficient_chain_solve(system)

    def test_empty_system(self):
        from repro.core import ADD, OrdinaryIRSystem
        from repro.core.baselines import work_efficient_chain_solve

        system = OrdinaryIRSystem.build([7], [], [], ADD)
        out, stats = work_efficient_chain_solve(system)
        assert out == [7] and stats.ops == 0
