"""Unit and property tests for the GIR solver."""

import pytest
from hypothesis import given, settings

from repro.core import (
    CONCAT,
    GIRSystem,
    OperatorError,
    run_gir,
)
from repro.core.gir import evaluate_trace_powers
from repro.core.operators import make_operator, modular_add, modular_mul

from ..conftest import gir_systems
from .._legacy_solvers import solve_gir


def fib_system(n, mod=10**9 + 7):
    op = modular_mul(mod)
    return GIRSystem.build(
        [3, 5] + [1] * n,
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        op,
    )


class TestCorrectness:
    def test_fibonacci_recurrence(self):
        sys_ = fib_system(25)
        assert solve_gir(sys_)[0] == run_gir(sys_)

    def test_empty_and_tiny(self):
        op = modular_add(97)
        assert solve_gir(GIRSystem.build([5], [], [], [], op))[0] == [5]
        sys_ = GIRSystem.build([5, 6], [0], [1], [1], op)
        assert solve_gir(sys_)[0] == run_gir(sys_)

    def test_never_assigned_cells_untouched(self):
        op = modular_add(97)
        sys_ = GIRSystem.build([1, 2, 3, 4], [0], [1], [2], op)
        out, _ = solve_gir(sys_)
        assert out[1:] == [2, 3, 4]

    @given(gir_systems(distinct_g=True))
    @settings(max_examples=80)
    def test_property_distinct_g(self, sys_):
        assert solve_gir(sys_)[0] == run_gir(sys_)

    @given(gir_systems(distinct_g=False))
    @settings(max_examples=80)
    def test_property_non_distinct_g_via_renaming(self, sys_):
        out, stats = solve_gir(sys_, collect_stats=True)
        assert out == run_gir(sys_)

    def test_rename_flag_reported(self):
        op = modular_add(97)
        sys_ = GIRSystem.build([1, 2], [0, 0], [1, 1], [1, 0], op)
        _, stats = solve_gir(sys_, collect_stats=True)
        assert stats.renamed

    def test_rename_can_be_disallowed(self):
        op = modular_add(97)
        sys_ = GIRSystem.build([1, 2], [0, 0], [1, 1], [1, 0], op)
        with pytest.raises(ValueError, match="non-distinct g"):
            solve_gir(sys_, allow_rename=False)


class TestOrdinaryDispatch:
    def test_ordinary_shaped_non_commutative_solvable(self):
        # h == g with distinct g: the section-2 special case applies,
        # so commutativity is not required
        sys_ = GIRSystem.build(
            [("a",), ("b",), ("c",)], [1, 2], [0, 1], [1, 2], CONCAT
        )
        out, stats = solve_gir(sys_, collect_stats=True)
        assert out == run_gir(sys_)
        assert stats.ordinary_dispatch
        assert stats.cap_iterations == 0

    def test_dispatch_can_be_disabled(self):
        op = modular_add(97)
        sys_ = GIRSystem.build([1, 2, 3], [1, 2], [0, 1], [1, 2], op)
        a, sa = solve_gir(sys_, collect_stats=True)
        b, sb = solve_gir(
            sys_, collect_stats=True, allow_ordinary_dispatch=False
        )
        assert a == b == run_gir(sys_)
        assert sa.ordinary_dispatch and not sb.ordinary_dispatch
        assert sb.cap_iterations >= 0 and sb.power_ops >= 0

    def test_non_commutative_without_dispatch_rejected(self):
        sys_ = GIRSystem.build(
            [("a",), ("b",), ("c",)], [1, 2], [0, 1], [1, 2], CONCAT
        )
        with pytest.raises(OperatorError, match="not commutative"):
            solve_gir(sys_, allow_ordinary_dispatch=False)

    def test_non_distinct_g_not_dispatched(self):
        op = modular_add(97)
        sys_ = GIRSystem.build([1, 2], [0, 0], [1, 1], [0, 0], op)
        _, stats = solve_gir(sys_, collect_stats=True)
        assert not stats.ordinary_dispatch and stats.renamed


class TestAlgebraicRequirements:
    def test_non_commutative_rejected(self):
        sys_ = GIRSystem.build(
            [("a",), ("b",), ("c",)], [2], [0], [1], CONCAT
        )
        with pytest.raises(OperatorError, match="not commutative"):
            solve_gir(sys_)

    def test_atomic_power_is_used(self):
        """The solver must call op.power once per (cell, count>1)
        factor rather than expanding the trace."""
        calls = []

        def counting_power(x, k):
            calls.append(k)
            return (x * (k % 97)) % 97

        op = make_operator(
            "counted_add",
            lambda x, y: (x + y) % 97,
            commutative=True,
            power=counting_power,
        )
        n = 20
        sys_ = GIRSystem.build(
            [3, 5] + [0] * n,
            [i + 2 for i in range(n)],
            [i + 1 for i in range(n)],
            [i for i in range(n)],
            op,
        )
        out, stats = solve_gir(sys_, collect_stats=True)
        assert out == run_gir(sys_)
        # Fibonacci counts appear as exponents: exponential in n, far
        # beyond the number of power calls (which is O(n)).
        fib = [1, 1]
        for _ in range(n + 1):
            fib.append(fib[-1] + fib[-2])
        assert max(calls) == fib[n]
        assert len(calls) == stats.power_ops


class TestTraceEvaluation:
    def test_single_factor(self):
        op = modular_add(97)
        value, p, c = evaluate_trace_powers({3: 1}, [0, 0, 0, 7], op)
        assert (value, p, c) == (7, 0, 0)

    def test_power_and_combine_counts(self):
        op = modular_add(97)
        value, p, c = evaluate_trace_powers({0: 2, 1: 1, 2: 3}, [1, 2, 3], op)
        assert value == (2 * 1 + 2 + 3 * 3) % 97
        assert p == 2  # two factors with exponent > 1
        assert c == 2  # three factors -> two combines

    def test_empty_trace_rejected(self):
        op = modular_add(97)
        with pytest.raises(ValueError, match="empty trace"):
            evaluate_trace_powers({}, [1], op)

    def test_deterministic_order(self):
        op = modular_add(97)
        a = evaluate_trace_powers({5: 1, 1: 2, 3: 1}, list(range(10)), op)
        b = evaluate_trace_powers({3: 1, 5: 1, 1: 2}, list(range(10)), op)
        assert a == b


class TestStats:
    def test_stats_fields(self):
        sys_ = fib_system(16)
        _, stats = solve_gir(sys_, collect_stats=True)
        assert stats.n == 16
        assert stats.cap_iterations >= 1
        assert stats.cap_edge_work > 0
        assert stats.power_ops > 0
        assert stats.combine_ops > 0
        assert stats.total_ops == stats.power_ops + stats.combine_ops
        assert stats.reduction_depth >= 1
        assert not stats.renamed
