"""Numerical robustness tests.

The solvers re-associate floating-point operations (balanced products
instead of left folds), so results can differ from the sequential loop
in the last bits.  These tests quantify that: both the sequential loop
and the parallel solvers are compared against *exact* Fraction ground
truth, and their errors must be of the same magnitude -- the parallel
algorithms must not be systematically less accurate.
"""

from fractions import Fraction

import numpy as np
import pytest

from repro.core import (
    FLOAT_MUL,
    AffineRecurrence,
    OrdinaryIRSystem,
    run_moebius_sequential,
    run_ordinary,
)
from repro.core.operators import CONCAT, make_operator
from .._legacy_solvers import solve_moebius, solve_ordinary, solve_ordinary_numpy


class TestMoebiusAccuracy:
    def _chain(self, rng, n):
        """A float affine chain plus its exact Fraction twin."""
        a = rng.uniform(0.9, 1.1, n)
        b = rng.uniform(-1.0, 1.0, n)
        x0 = [rng.uniform(0.5, 1.5)]
        float_rec = AffineRecurrence.build(
            x0 + [0.0] * n,
            g=list(range(1, n + 1)),
            f=list(range(0, n)),
            a=a.tolist(),
            b=b.tolist(),
        )
        exact_rec = AffineRecurrence.build(
            [Fraction(v) for v in x0] + [Fraction(0)] * n,
            g=list(range(1, n + 1)),
            f=list(range(0, n)),
            a=[Fraction(v) for v in a],
            b=[Fraction(v) for v in b],
        )
        return float_rec, exact_rec

    def test_parallel_error_comparable_to_sequential(self, rng):
        n = 200
        float_rec, exact_rec = self._chain(rng, n)
        exact = [float(v) for v in run_moebius_sequential(exact_rec)]
        seq = run_moebius_sequential(float_rec)
        par, _ = solve_moebius(float_rec)

        seq_err = max(abs(s - e) for s, e in zip(seq, exact))
        par_err = max(abs(p - e) for p, e in zip(par, exact))
        scale = max(abs(v) for v in exact)
        # both tiny relative to the value scale...
        assert seq_err <= 1e-10 * max(scale, 1)
        assert par_err <= 1e-10 * max(scale, 1)
        # ...and of comparable magnitude
        assert par_err <= 100 * max(seq_err, 1e-16)

    def test_exact_on_fractions_by_construction(self, rng):
        _, exact_rec = self._chain(rng, 60)
        assert solve_moebius(exact_rec)[0] == run_moebius_sequential(exact_rec)


class TestFloatSaturation:
    def test_parallel_matches_sequential_at_inf(self):
        # growth to overflow: both paths must agree on where inf begins
        n = 40
        initial = [1e300] + [10.0] * n
        system = OrdinaryIRSystem.build(
            initial, list(range(1, n + 1)), list(range(n)), FLOAT_MUL
        )
        seq = run_ordinary(system)
        par, _ = solve_ordinary_numpy(system)
        assert seq[-1] == float("inf")
        for s, p in zip(seq, par):
            if s == float("inf"):
                assert p == float("inf")
            else:
                assert p == pytest.approx(s, rel=1e-9)


class TestEngineEquivalence:
    def test_typed_and_object_paths_identical(self, rng):
        """The vectorized engine's typed (float64 ufunc) path and the
        pure-Python engine must produce bit-identical floats -- they
        perform the same operations in the same order."""
        n = 300
        m = n + 10
        g = rng.permutation(m)[:n]
        f = rng.integers(0, m, size=n)
        initial = rng.uniform(0.5, 1.5, size=m).tolist()
        typed_sys = OrdinaryIRSystem.build(initial, g, f, FLOAT_MUL)
        # an operator with the same fn but no vector_fn: object path
        object_mul = make_operator(
            "obj_mul", lambda x, y: x * y, commutative=True, dtype=None
        )
        object_sys = OrdinaryIRSystem.build(initial, g, f, object_mul)
        a, _ = solve_ordinary_numpy(typed_sys)
        b, _ = solve_ordinary_numpy(object_sys)
        c, _ = solve_ordinary(typed_sys)
        assert a == b == c  # bit-identical

    def test_tuple_monoid_through_object_path(self, rng):
        n, m = 100, 110
        g = rng.permutation(m)[:n]
        f = rng.integers(0, m, size=n)
        initial = [(f"s{j}",) for j in range(m)]
        system = OrdinaryIRSystem.build(initial, g, f, CONCAT)
        assert solve_ordinary_numpy(system)[0] == run_ordinary(system)
