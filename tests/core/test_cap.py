"""Unit and property tests for CAP (Counting All Paths)."""

import math

import pytest
from hypothesis import given, settings

from repro.core import GIRSystem
from repro.core import cap as cap_module
from repro.core.cap import CAPResult, cap_iterations, count_all_paths, count_paths_dp
from repro.core.depgraph import build_dependence_graph
from repro.core.operators import modular_add
from repro.core.traces import leaf_counts

from ..conftest import gir_systems


def fib_graph(n):
    op = modular_add(97)
    sys_ = GIRSystem.build(
        [1] * (n + 2),
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        op,
    )
    return sys_, build_dependence_graph(sys_)


class TestCAPCorrectness:
    def test_fibonacci_powers(self):
        n = 20
        _, g = fib_graph(n)
        cap = count_all_paths(g)
        fib = [1, 1]
        for _ in range(n + 2):
            fib.append(fib[-1] + fib[-2])
        assert cap.powers[n - 1] == {g.n + 0: fib[n - 1], g.n + 1: fib[n]}

    def test_matches_dp_ground_truth(self):
        _, g = fib_graph(12)
        assert count_all_paths(g).powers == count_paths_dp(g)

    def test_matches_trace_leaf_counts(self):
        sys_, g = fib_graph(10)
        cap = count_all_paths(g)
        lc = leaf_counts(sys_)
        for i in range(g.n):
            assert cap.powers_by_cell(g, i) == lc[i]

    def test_double_chain_powers_of_two(self):
        # the paper's CAP(G) example: a double chain v1 => v2 => ... vn
        # gives 2^(i-1) paths from the bottom to node i
        op = modular_add(97)
        n = 8
        sys_ = GIRSystem.build(
            [1] * (n + 1),
            [i + 1 for i in range(n)],
            [i for i in range(n)],
            [i for i in range(n)],  # h = f: double edges
            op,
        )
        g = build_dependence_graph(sys_)
        cap = count_all_paths(g)
        for i in range(n):
            assert cap.powers[i] == {g.n + 0: 2 ** (i + 1)}

    @given(gir_systems(distinct_g=True))
    @settings(max_examples=60)
    def test_property_cap_equals_dp(self, sys_):
        g = build_dependence_graph(sys_)
        assert count_all_paths(g).powers == count_paths_dp(g)

    @given(gir_systems(distinct_g=True))
    @settings(max_examples=40)
    def test_property_cap_equals_leaf_counts(self, sys_):
        g = build_dependence_graph(sys_)
        cap = count_all_paths(g)
        lc = leaf_counts(sys_)
        for i in range(g.n):
            assert cap.powers_by_cell(g, i) == lc[i]


class TestMethodParity:
    """The three CAP backends are one algorithm in three clothes."""

    @pytest.mark.parametrize("method", ("matrix", "edges", "dp"))
    def test_explicit_methods_agree(self, method):
        _, g = fib_graph(24)
        assert count_all_paths(g, method=method).powers == count_paths_dp(g)

    def test_matrix_and_edges_share_iteration_accounting(self):
        _, g = fib_graph(20)
        mat = count_all_paths(g, method="matrix")
        edg = count_all_paths(g, method="edges")
        assert mat.iterations == edg.iterations
        assert mat.powers == edg.powers
        # partial states agree round by round, too
        for k in range(1, mat.iterations):
            assert (
                count_all_paths(g, method="matrix", max_iterations=k).powers
                == count_all_paths(g, method="edges", max_iterations=k).powers
            )

    @given(gir_systems(distinct_g=True))
    @settings(max_examples=30)
    def test_property_methods_agree(self, sys_):
        g = build_dependence_graph(sys_)
        want = count_paths_dp(g)
        for method in ("matrix", "edges", "dp"):
            assert count_all_paths(g, method=method).powers == want

    def test_object_promotion_stays_exact(self):
        # fib(121) >> 2**63: the counting matrix must promote to exact
        # Python ints before any product can overflow int64.
        n = 120
        _, g = fib_graph(n)
        cap = count_all_paths(g, method="matrix")
        assert cap.powers == count_paths_dp(g)
        top = max(cap.powers[n - 1].values())
        assert top.bit_length() > 63  # genuinely beyond int64

    def test_unknown_method_rejected(self):
        _, g = fib_graph(4)
        with pytest.raises(ValueError):
            count_all_paths(g, method="quantum")


class TestScipyGating:
    """CAP parity must survive SciPy's absence (both the env override
    and a missing import)."""

    def test_env_override_forces_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_SCIPY", "1")
        assert cap_module._scipy_sparse() is None
        _, g = fib_graph(18)
        assert count_all_paths(g, method="matrix").powers == count_paths_dp(g)

    def test_monkeypatched_absence_forces_fallback(self, monkeypatch):
        monkeypatch.setattr(cap_module, "_scipy_sparse", lambda: None)
        _, g = fib_graph(18)
        for method in ("auto", "matrix"):
            assert count_all_paths(g, method=method).powers == count_paths_dp(g)

    def test_pure_python_rows_past_dense_cutoff(self, monkeypatch):
        # no scipy AND too many nodes for the dense path: the sparse
        # pure-Python row representation carries the doubling.
        monkeypatch.setattr(cap_module, "_scipy_sparse", lambda: None)
        monkeypatch.setattr(cap_module, "_DENSE_MAX_NODES", 8)
        _, g = fib_graph(30)
        assert count_all_paths(g, method="matrix").powers == count_paths_dp(g)


class TestConvergence:
    def test_iteration_bound_logarithmic(self):
        for n in (1, 2, 3, 4, 15, 16, 17, 63):
            _, g = fib_graph(n)
            cap = count_all_paths(g)
            assert cap.iterations <= max(1, math.ceil(math.log2(g.depth())))

    def test_zero_iterations_when_flat(self):
        # every operand is a leaf: converged before any iteration
        op = modular_add(97)
        sys_ = GIRSystem.build([1, 2, 3, 4], [3], [0], [1], op)
        g = build_dependence_graph(sys_)
        assert count_all_paths(g).iterations == 0

    def test_max_iterations_cap(self):
        _, g = fib_graph(32)
        partial = count_all_paths(g, max_iterations=1)
        assert partial.iterations == 1
        full = count_all_paths(g)
        assert full.powers != partial.powers

    def test_storyboard_converges_and_is_prefix_consistent(self):
        _, g = fib_graph(9)
        frames = list(cap_iterations(g))
        # first frame is the raw dependence edges
        assert frames[0][0] == g.out_edges(0)
        # last frame equals the converged result
        assert frames[-1] == count_all_paths(g).powers
        # every frame only ever points "down" (labels positive)
        for frame in frames:
            for e in frame:
                assert all(x > 0 for x in e.values())

    def test_edge_work_positive_only_when_iterating(self):
        _, g = fib_graph(10)
        cap = count_all_paths(g)
        assert cap.edge_work > 0
        op = modular_add(97)
        flat = GIRSystem.build([1, 2, 3], [2], [0], [1], op)
        cap0 = count_all_paths(build_dependence_graph(flat))
        assert cap0.edge_work == 0
