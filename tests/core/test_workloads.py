"""Tests for the workload generators' documented invariants."""

import math

import numpy as np
import pytest

from repro.core import run_gir, run_ordinary
from repro.core.cap import count_all_paths
from repro.core.depgraph import build_dependence_graph
from repro.core.traces import chain_lengths, max_chain_length, tree_sizes
from repro.core.workloads import (
    chain_system,
    double_chain_gir_system,
    fibonacci_gir_system,
    forest_system,
    random_gir_system,
    random_ordinary_system,
    scatter_system,
)
from .._legacy_solvers import solve_gir, solve_ordinary_numpy


class TestChain:
    def test_is_one_maximal_chain(self):
        sys_ = chain_system(32)
        assert max_chain_length(sys_) == 32
        _, stats = solve_ordinary_numpy(sys_, collect_stats=True)
        assert stats.rounds == 5

    def test_solvable(self):
        sys_ = chain_system(17)
        # float products associate differently in the balanced solve:
        # compare with tolerance
        assert np.allclose(solve_ordinary_numpy(sys_)[0], run_ordinary(sys_))


class TestForest:
    def test_chain_length_distribution(self):
        sys_ = forest_system([3, 1, 5])
        lengths = chain_lengths(sys_)
        assert sorted(lengths.tolist()) == sorted([1, 2, 3, 1, 1, 2, 3, 4, 5])
        assert max_chain_length(sys_) == 5

    def test_zero_length_chains_allowed(self):
        sys_ = forest_system([0, 2, 0])
        assert sys_.n == 2

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            forest_system([2, -1])

    def test_solvable(self):
        sys_ = forest_system([4, 7, 1, 2])
        assert np.allclose(solve_ordinary_numpy(sys_)[0], run_ordinary(sys_))


class TestRandomOrdinary:
    def test_deterministic_by_seed(self):
        a = random_ordinary_system(20, seed=5)
        b = random_ordinary_system(20, seed=5)
        assert a.g.tolist() == b.g.tolist() and a.f.tolist() == b.f.tolist()
        c = random_ordinary_system(20, seed=6)
        assert a.g.tolist() != c.g.tolist() or a.f.tolist() != c.f.tolist()

    def test_valid_and_solvable(self):
        for seed in range(5):
            sys_ = random_ordinary_system(25, extra_cells=5, seed=seed)
            assert sys_.g_is_distinct()
            assert np.allclose(
                solve_ordinary_numpy(sys_)[0], run_ordinary(sys_)
            )


class TestScatter:
    def test_non_distinct_g(self):
        sys_ = scatter_system(50, 5, seed=1)
        assert not sys_.g_is_distinct()
        assert solve_gir(sys_)[0] == pytest.approx(run_gir(sys_))


class TestGIRShapes:
    def test_fibonacci_powers(self):
        sys_ = fibonacci_gir_system(12)
        sizes = tree_sizes(sys_)
        fib = [1, 1]
        for _ in range(14):
            fib.append(fib[-1] + fib[-2])
        assert sizes == [fib[i + 2] for i in range(12)]
        assert solve_gir(sys_)[0] == run_gir(sys_)

    def test_double_chain_powers_of_two(self):
        sys_ = double_chain_gir_system(10)
        graph = build_dependence_graph(sys_)
        cap = count_all_paths(graph)
        for i in range(10):
            assert cap.powers[i] == {graph.n: 2 ** (i + 1)}
        assert solve_gir(sys_)[0] == run_gir(sys_)

    def test_random_gir_both_modes(self):
        for distinct in (True, False):
            for seed in range(4):
                sys_ = random_gir_system(18, seed=seed, distinct_g=distinct)
                assert sys_.g_is_distinct() == distinct or sys_.n <= 1
                assert solve_gir(sys_)[0] == run_gir(sys_)
