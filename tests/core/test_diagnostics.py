"""Tests for the diagnostics / explain helpers."""

from repro.core import CONCAT, GIRSystem, OrdinaryIRSystem, modular_mul
from repro.core.diagnostics import explain_gir, explain_ordinary


def chain(n):
    return OrdinaryIRSystem.build(
        [(f"s{j}",) for j in range(n + 1)],
        list(range(1, n + 1)),
        list(range(n)),
        CONCAT,
    )


class TestExplainOrdinary:
    def test_mentions_structure(self):
        text = explain_ordinary(chain(8))
        assert "n = 8" in text
        assert "longest 8" in text
        assert "3 concatenation round(s)" in text
        assert "non-commutative" in text

    def test_counts_preserved_cells(self):
        text = explain_ordinary(chain(4))  # m = n + 1
        assert "1 cell(s) preserve their initial values" in text

    def test_empty(self):
        sys_ = OrdinaryIRSystem.build([1], [], [], CONCAT)
        assert "empty loop" in explain_ordinary(sys_)


class TestExplainGIR:
    def fib(self, n):
        return GIRSystem.build(
            [2, 3] + [1] * n,
            [i + 2 for i in range(n)],
            [i + 1 for i in range(n)],
            [i for i in range(n)],
            modular_mul(97),
        )

    def test_mentions_pipeline(self):
        text = explain_gir(self.fib(12))
        assert "depth 12" in text
        assert "CAP" in text
        assert "atomic powers essential" in text
        assert "commutative: GIR-solvable" in text

    def test_flags_non_commutative(self):
        sys_ = GIRSystem.build([("a",), ("b",), ("c",)], [2], [0], [1], CONCAT)
        text = explain_gir(sys_)
        assert "NON-commutative" in text
        assert "P-vs-NC" in text

    def test_flags_renaming(self):
        op = modular_mul(97)
        sys_ = GIRSystem.build([1, 2], [0, 0], [1, 1], [1, 0], op)
        text = explain_gir(sys_)
        assert "renaming adds 2 version cells" in text

    def test_notes_ordinary_shape(self):
        op = modular_mul(97)
        sys_ = GIRSystem.build([1, 2, 3], [1, 2], [0, 1], [1, 2], op)
        assert "OrdinaryIR" in explain_gir(sys_)

    def test_empty(self):
        op = modular_mul(97)
        sys_ = GIRSystem.build([1], [], [], [], op)
        assert "empty loop" in explain_gir(sys_)
