"""Tests for the diagnostics / explain helpers."""

import re

import numpy as np
import pytest

from repro.core import (
    CONCAT,
    GIRSystem,
    OrdinaryIRSystem,
    modular_mul,
)
from repro.core.diagnostics import explain_gir, explain_ordinary
from .._legacy_solvers import solve_gir, solve_ordinary, solve_ordinary_numpy


def chain(n):
    return OrdinaryIRSystem.build(
        [(f"s{j}",) for j in range(n + 1)],
        list(range(1, n + 1)),
        list(range(n)),
        CONCAT,
    )


class TestExplainOrdinary:
    def test_mentions_structure(self):
        text = explain_ordinary(chain(8))
        assert "n = 8" in text
        assert "longest 8" in text
        assert "3 concatenation round(s)" in text
        assert "non-commutative" in text

    def test_counts_preserved_cells(self):
        text = explain_ordinary(chain(4))  # m = n + 1
        assert "1 cell(s) preserve their initial values" in text

    def test_empty(self):
        sys_ = OrdinaryIRSystem.build([1], [], [], CONCAT)
        assert "empty loop" in explain_ordinary(sys_)


class TestExplainGIR:
    def fib(self, n):
        return GIRSystem.build(
            [2, 3] + [1] * n,
            [i + 2 for i in range(n)],
            [i + 1 for i in range(n)],
            [i for i in range(n)],
            modular_mul(97),
        )

    def test_mentions_pipeline(self):
        text = explain_gir(self.fib(12))
        assert "depth 12" in text
        assert "CAP" in text
        assert "atomic powers essential" in text
        assert "commutative: GIR-solvable" in text

    def test_flags_non_commutative(self):
        sys_ = GIRSystem.build([("a",), ("b",), ("c",)], [2], [0], [1], CONCAT)
        text = explain_gir(sys_)
        assert "NON-commutative" in text
        assert "P-vs-NC" in text

    def test_flags_renaming(self):
        op = modular_mul(97)
        sys_ = GIRSystem.build([1, 2], [0, 0], [1, 1], [1, 0], op)
        text = explain_gir(sys_)
        assert "renaming adds 2 version cells" in text

    def test_notes_ordinary_shape(self):
        op = modular_mul(97)
        sys_ = GIRSystem.build([1, 2, 3], [1, 2], [0, 1], [1, 2], op)
        assert "OrdinaryIR" in explain_gir(sys_)

    def test_empty(self):
        op = modular_mul(97)
        sys_ = GIRSystem.build([1], [], [], [], op)
        assert "empty loop" in explain_gir(sys_)


def predicted_rounds(text):
    """The round count explain_ordinary promises."""
    match = re.search(r"(\d+) concatenation round\(s\)", text)
    assert match, text
    return int(match.group(1))


def predicted_cap_iterations(text):
    """The CAP iteration bound explain_gir promises."""
    match = re.search(r"CAP in <= (\d+) doubling iteration\(s\)", text)
    assert match, text
    return int(match.group(1))


class TestPredictionsMatchObservation:
    """The explain_* round-count *predictions* must agree with what the
    solvers actually record -- the paper's ceil(log2 L) claims, checked
    end to end on the same systems."""

    @pytest.mark.parametrize("n", [1, 2, 3, 7, 8, 9, 64, 100])
    def test_ordinary_chain_rounds_exact(self, n):
        system = chain(n)
        predicted = predicted_rounds(explain_ordinary(system))
        _out, stats = solve_ordinary(system, collect_stats=True)
        assert stats.rounds == predicted

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_ordinary_random_forest_rounds_exact(self, seed):
        rng = np.random.default_rng(seed)
        n = 50
        # distinct g, each f(i) pointing anywhere: a forest of chains
        g = rng.permutation(n) + 1
        f = rng.integers(0, n + 1, size=n)
        system = OrdinaryIRSystem.build(
            [(f"s{j}",) for j in range(n + 1)], g, f, CONCAT
        )
        predicted = predicted_rounds(explain_ordinary(system))
        _out, stats = solve_ordinary_numpy(system, collect_stats=True)
        assert stats.rounds == predicted

    def test_both_engines_agree_with_prediction(self):
        system = chain(33)
        predicted = predicted_rounds(explain_ordinary(system))
        _o1, py_stats = solve_ordinary(system, collect_stats=True)
        _o2, np_stats = solve_ordinary_numpy(system, collect_stats=True)
        assert py_stats.rounds == np_stats.rounds == predicted

    @pytest.mark.parametrize("n", [2, 5, 12, 20])
    def test_gir_cap_iteration_bound_holds(self, n):
        system = GIRSystem.build(
            [2, 3] + [1] * n,
            [i + 2 for i in range(n)],
            [i + 1 for i in range(n)],
            list(range(n)),
            modular_mul(97),
        )
        bound = predicted_cap_iterations(explain_gir(system))
        _out, stats = solve_gir(
            system, collect_stats=True, allow_ordinary_dispatch=False
        )
        assert 0 < stats.cap_iterations <= bound
