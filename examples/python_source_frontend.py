#!/usr/bin/env python
"""Parallelize plain Python loops -- no AST construction, no analysis.

The most compiler-like entry point: write the loop as ordinary Python,
hand the *source* to `parallelize_source`, and the recognizer/Moebius
machinery does the rest.  The body is parsed, never executed.

Run:  python examples/python_source_frontend.py
"""

import numpy as np

from repro.loops import loops_from_source, parallelize_source
from repro.loops.program import evaluate_program

N = 500


def hydro_fragment(X, Y, Z):
    """The paper's section-3 shape, as plain Python."""
    for i in range(1, n):  # noqa: F821  (n bound via consts)
        X[i] = X[i] + r * (Y[i] + X[i - 1] * Z[i])  # noqa: F821


def guarded_chain(V, S):
    for k in range(1, n):  # noqa: F821
        V[k] = V[k - 1] * 0.5 + S[k] if S[k] > 0.0 else V[k - 1] - S[k]


def dot_product(Q, A, B):
    for k in range(n):  # noqa: F821
        Q[0] += A[k] * B[k]


def main() -> None:
    rng = np.random.default_rng(42)
    consts = {"n": N, "r": 0.175}

    jobs = [
        (
            hydro_fragment,
            {
                "X": rng.normal(size=N).tolist(),
                "Y": rng.normal(size=N).tolist(),
                "Z": rng.normal(size=N).tolist(),
            },
        ),
        (
            guarded_chain,
            {"V": [1.0] * N, "S": rng.normal(size=N).tolist()},
        ),
        (
            dot_product,
            {
                "Q": [0.0],
                "A": rng.normal(size=N).tolist(),
                "B": rng.normal(size=N).tolist(),
            },
        ),
    ]

    for fn, env in jobs:
        result = parallelize_source(fn, env, consts=consts)
        program = loops_from_source(fn, consts=consts)
        reference = evaluate_program(program, env)
        err = max(
            abs(a - b)
            for name in env
            for a, b in zip(result.env[name], reference[name])
        )
        rec = result.steps[0].recognition
        print(f"{fn.__name__:<16} class={rec.ir_class.value:<18} "
              f"method={result.methods}  max|err|={err:.2e}")
        assert result.fully_parallel and err < 1e-9

    print()
    print("Three plain-Python loops -- an indexed affine recurrence, a")
    print("data-guarded chain, and a scalar reduction -- parallelized to")
    print("O(log n) steps straight from their source text.")


if __name__ == "__main__":
    main()
