#!/usr/bin/env python
"""Drive the PRAM simulator directly (the SimParC substitute).

Shows the machine model underneath the paper's measurements: named
shared arrays, synchronous supersteps, access-policy enforcement
(EREW/CREW/CRCW) and burst-wise instruction accounting with a bounded
processor count.

Run:  python examples/pram_playground.py
"""

from repro.pram import PRAM, AccessPolicy, MemoryConflictError
from repro.pram.instructions import CostModel


def main() -> None:
    # --- a synchronous pairwise swap -----------------------------------
    machine = PRAM(processors=2, policy=AccessPolicy.CREW)
    machine.memory.alloc("A", [10, 20, 30, 40])

    def swapper(i, j):
        def thunk(ctx):
            ctx.write("A", i, ctx.read("A", j))

        return thunk

    # all four processors read the PRE-step state: a true parallel swap
    machine.superstep(
        [(0, swapper(0, 1)), (1, swapper(1, 0)), (2, swapper(2, 3)), (3, swapper(3, 2))]
    )
    print("synchronous swap:", machine.memory.snapshot("A"))
    print("metrics:", machine.metrics.describe())
    print()

    # --- policy enforcement --------------------------------------------
    erew = PRAM(processors=4, policy=AccessPolicy.EREW)
    erew.memory.alloc("A", [1, 2, 3])

    def reader(ctx):
        ctx.read("A", 0)  # everyone reads the same cell

    try:
        erew.superstep([(p, reader) for p in range(3)])
    except MemoryConflictError as exc:
        print("EREW machine rejected concurrent reads:")
        print(" ", exc)
    print()

    crcw = PRAM(processors=4, policy=AccessPolicy.CRCW_PRIORITY)
    crcw.memory.alloc("A", [0])

    def writer(p):
        def thunk(ctx):
            ctx.write("A", 0, 100 + p)

        return thunk

    crcw.superstep([(p, writer(p)) for p in (3, 1, 2)])
    print("CRCW-priority concurrent write, lowest id wins:",
          crcw.memory.peek("A", 0))
    print()

    # --- parallel tree reduction with burst accounting ------------------
    n = 16
    machine = PRAM(processors=4, cost_model=CostModel())
    machine.memory.alloc("A", list(range(1, n + 1)))
    stride = 1
    while stride < n:
        work = []
        for i in range(0, n, 2 * stride):
            def reducer(i=i, stride=stride):
                def thunk(ctx):
                    a = ctx.read("A", i)
                    b = ctx.read("A", i + stride)
                    ctx.write("A", i, ctx.compute(lambda x, y: x + y, a, b))

                return thunk

            work.append((i, reducer()))
        machine.superstep(work)
        stride *= 2
    print(f"tree-reduction sum of 1..{n} =", machine.memory.peek("A", 0))
    print("supersteps:", machine.metrics.supersteps,
          " time:", machine.metrics.time,
          " work:", machine.metrics.work)
    print("(4 physical processors simulate up to 8 virtual ones per step")
    print(" in ceil(a/P) bursts -- the paper's fork-bounded refinement)")
    print()

    # --- event tracing ----------------------------------------------------
    traced = PRAM(processors=2, record_trace=True)
    traced.memory.alloc("A", [10, 20])

    def swap(i, j):
        def thunk(ctx):
            ctx.write("A", i, ctx.read("A", j))

        return thunk

    traced.superstep([(0, swap(0, 1)), (1, swap(1, 0))])
    print("event trace of a synchronous swap:")
    print(traced.render_trace())
    print()

    # --- CRCW-common: minimum in constant depth -----------------------------
    from repro.pram.primitives import run_crcw_min_on_pram

    values = [9, 4, 7, 2, 8, 5]
    smallest, metrics = run_crcw_min_on_pram(values)
    print(f"CRCW-common minimum of {values} = {smallest} "
          f"in {metrics.supersteps} supersteps (constant depth, n^2 procs)")


if __name__ == "__main__":
    main()
