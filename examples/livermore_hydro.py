#!/usr/bin/env python
"""The paper's section-3 showcase: Livermore kernel 23 via Moebius.

Kernel 23 (2-D implicit hydrodynamics) sweeps columns of a grid with

    za[k][j] := za[k][j] + 0.175*(qa - za[k][j])

where ``qa`` carries the just-updated ``za[k-1][j]`` -- a loop-carried
affine recurrence.  The paper parallelizes it *without any dependence
analysis* by lifting each column sweep to 2x2 Moebius matrices and
solving it as an OrdinaryIR system in O(log n) steps.

This example runs the sequential kernel and the Moebius-parallel
version on the same data, verifies bitwise-close agreement, and prints
the simulated instruction costs of one column solve.

Run:  python examples/livermore_hydro.py
"""

import numpy as np

from repro.core import AffineRecurrence
from repro.livermore.data import kernel_inputs
from repro.livermore.kernels import k23
from repro.livermore.parallel import k23_parallel
from repro.pram import profile_ordinary
from repro.core import OrdinaryIRSystem
from repro.core.moebius import Mat2, moebius_ir_operator


def main() -> None:
    n = 100  # the canonical kernel-23 grid height (101 rows)
    d = kernel_inputs(23, n, seed=1997)

    print(f"Livermore kernel 23, grid {n + 2} x {d['jn']}, "
          f"{d['jn'] - 2} column sweeps")
    print()

    seq = k23(d)["za"]
    par = k23_parallel(d)["za"]
    err = max(
        abs(a - b)
        for ra, rb in zip(seq, par)
        for a, b in zip(ra, rb)
    )
    print(f"max |sequential - parallel| = {err:.3e}")
    assert err < 1e-9

    # Cost of one column sweep, solved as OrdinaryIR over matrices.
    j = 1
    column = [d["za"][k][j] for k in range(n + 1)]
    a = [0.175 * d["zv"][k][j] for k in range(1, n)]
    b = [0.0] * (n - 1)  # placeholder coefficients: cost is data-independent
    rec = AffineRecurrence.build(
        column, g=list(range(1, n)), f=list(range(0, n - 1)), a=a, b=b
    )
    coeff = [Mat2.constant(v) for v in column]
    for t, cell in enumerate(range(1, n)):
        coeff[cell] = rec.coefficient_matrix(t)
    system = OrdinaryIRSystem(
        initial=coeff,
        g=rec.g.copy(),
        f=rec.f.copy(),
        op=moebius_ir_operator(),
    )
    _, profile = profile_ordinary(system)
    print()
    print("one column sweep, simulated instruction time:")
    print(f"  sequential recurrence : {profile.sequential_time()}")
    for p in (1, 8, 32, 128):
        t = profile.parallel_time(p)
        print(f"  Moebius-parallel P={p:<4}: {t}  "
              f"(speedup {profile.sequential_time() / t:.2f}x)")
    print()
    print("The paper's point: the loop was parallelized to O(log n) steps")
    print("purely from its syntactic shape -- no dependence analysis.")


if __name__ == "__main__":
    main()
