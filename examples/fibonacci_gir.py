#!/usr/bin/env python
"""General IR (GIR): the paper's Fibonacci-power example, end to end.

The loop ``A[i] := A[i-1] * A[i-2]`` has *tree-shaped* traces that
expand to Fibonacci-many factors (paper Figs 4-5): fully expanding
them is hopeless, so the GIR solver instead

1. builds the dependence DAG (Fig 6),
2. counts all paths with CAP in O(log n) doubling iterations
   (Figs 7-9) -- the path count from node i to a leaf is the *power*
   of that initial value in the trace, and
3. evaluates each trace as a short product of atomic powers.

Run:  python examples/fibonacci_gir.py
"""

from repro.core import GIRSystem, modular_mul, run_gir
from repro.core.cap import cap_iterations, count_all_paths
from repro.core.depgraph import build_dependence_graph
from repro.core.traces import tree_sizes
from repro.engine import solve


def main() -> None:
    n = 30
    mod = 10**9 + 7
    op = modular_mul(mod)
    system = GIRSystem.build(
        initial=[2, 3] + [1] * n,
        g=[i + 2 for i in range(n)],
        f=[i + 1 for i in range(n)],
        h=[i for i in range(n)],
        op=op,
    )
    print(f"loop: for i in range({n}): A[i+2] := A[i+1] * A[i]   (mod {mod})")
    print()

    sizes = tree_sizes(system)
    print(f"expanded trace of the last cell has {sizes[-1]:,} factors")
    print("(Fibonacci growth -- why the paper demands atomic powers)")
    print()

    graph = build_dependence_graph(system)
    print(f"dependence DAG: {graph.n} final nodes, {len(graph.leaves())} "
          f"leaves, depth {graph.depth()}")
    frames = list(cap_iterations(graph))
    print(f"CAP converged in {len(frames) - 1} path-doubling iterations "
          f"(log2(depth) = {graph.depth().bit_length() - 1}...)")

    cap = count_all_paths(graph)
    powers = cap.powers_by_cell(graph, n - 1)
    print(f"trace powers of the last cell: "
          f"A[0]^{powers[0]:,} * A[1]^{powers[1]:,}")
    print("(the exponents are consecutive Fibonacci numbers)")
    print()

    result = solve(system, collect_stats=True)
    parallel, stats = result.values, result.stats
    sequential = run_gir(system)
    assert parallel == sequential
    print(f"GIR solver == sequential loop  "
          f"(cap_iterations={stats.cap_iterations}, "
          f"power_ops={stats.power_ops}, combine_ops={stats.combine_ops})")
    print(f"final value A[{n + 1}] = {parallel[-1]}")


if __name__ == "__main__":
    main()
