#!/usr/bin/env python
"""Classic prefix computations through the IR machinery.

The paper generalizes the textbook fact that prefix sums solve
ordinary recurrences.  This example stays on the classic side and
shows the layer the generalization rests on:

* inclusive / exclusive / segmented scans over arbitrary associative
  operators, solved by the OrdinaryIR pointer-jumping engine;
* first-order linear recurrences via the Moebius reduction;
* the related-work baselines (Kogge-Stone, Blelloch) computing the
  same results with their classic work/depth trade-offs.

Run:  python examples/scans_and_recurrences.py
"""

import numpy as np

from repro.core import ADD, CONCAT, MAX
from repro.core.baselines import blelloch_scan, kogge_stone_scan, sequential_scan
from repro.core.prefix import (
    exclusive_scan,
    linear_recurrence,
    prefix_scan,
    segmented_scan,
)


def main() -> None:
    values = [3, 1, 4, 1, 5, 9, 2, 6]
    print(f"values           : {values}")

    sums, stats = prefix_scan(values, ADD, collect_stats=True)
    print(f"inclusive scan   : {sums}   ({stats.rounds} parallel rounds)")
    print(f"exclusive scan   : {exclusive_scan(values, ADD)}")
    print(f"running max      : {prefix_scan(values, MAX)[0]}")

    flags = [False, False, True, False, False, True, False, False]
    print(f"segment flags    : {[int(f) for f in flags]}")
    print(f"segmented scan   : {segmented_scan(values, flags, ADD)}")

    words = [(w,) for w in "the quick brown fox".split()]
    print(f"concat scan      : {prefix_scan(words, CONCAT)[0][-1]}")
    print()

    # first-order linear recurrence: x[i] = a[i]*x[i-1] + b[i]
    rng = np.random.default_rng(1)
    n = 6
    a = np.round(rng.uniform(0.5, 1.5, n), 2).tolist()
    b = np.round(rng.uniform(-1, 1, n), 2).tolist()
    xs = linear_recurrence(a, b, 1.0)
    print(f"x[i] = a[i]*x[i-1] + b[i],  a={a}, b={b}, x0=1")
    print("solved (Moebius) :", [round(x, 4) for x in xs])
    cur = 1.0
    for i in range(n):
        cur = a[i] * cur + b[i]
    assert abs(cur - xs[-1]) < 1e-12
    print()

    # the classic work/depth trade-off on a larger input
    n = 1 << 12
    big = list(range(1, n + 1))
    _, seq = sequential_scan(big, ADD)
    _, ks = kogge_stone_scan(big, ADD)
    _, bl = blelloch_scan(big, ADD)
    _, ir = prefix_scan(big, ADD, collect_stats=True)
    print(f"prefix sum of n = {n}:")
    print(f"  {'algorithm':<22} {'op-work':>8}  depth")
    for name, ops, depth in (
        ("sequential", seq.ops, seq.depth),
        ("Kogge-Stone", ks.ops, ks.depth),
        ("Blelloch", bl.ops, bl.depth),
        ("OrdinaryIR (repro)", ir.total_ops, ir.depth),
    ):
        print(f"  {name:<22} {ops:>8,}  {depth}")
    print()
    print("OrdinaryIR matches Kogge-Stone here; its value is that the same")
    print("engine also solves recurrences with arbitrary index maps.")


if __name__ == "__main__":
    main()
