#!/usr/bin/env python
"""The compiler angle: recognize and parallelize sequential loops.

The paper pitches IR equations as a way to parallelize loops *without
data-dependence analysis*: match the loop's syntactic shape, pick the
right parallel solver.  This example feeds a zoo of loops through
``repro.loops.parallelize`` and reports which path each one took.

Run:  python examples/loop_parallelizer.py
"""

import numpy as np

from repro.core import CONCAT
from repro.loops import (
    AffineIndex,
    Assign,
    BinOp,
    Const,
    Loop,
    OpApply,
    Ref,
    TableIndex,
    evaluate_loop,
    parallelize,
)

I = AffineIndex()


def main() -> None:
    rng = np.random.default_rng(7)
    n, m = 64, 80
    perm = rng.permutation(m)[:n]
    ftab = rng.integers(0, m, size=n)
    scatter = rng.integers(0, 8, size=n)

    zoo = [
        (
            "stencil map:        B[i] = Y[i]*Z[i] + 0.5",
            Loop(n, Assign(Ref("B", I), BinOp("+", BinOp("*", Ref("Y", I), Ref("Z", I)), Const(0.5)))),
            {"B": [0.0] * n, "Y": rng.normal(size=n).tolist(), "Z": rng.normal(size=n).tolist()},
        ),
        (
            "prefix recurrence:  X[i+1] = X[i] + Y[i]",
            Loop(n - 1, Assign(Ref("X", AffineIndex(1, 1)), BinOp("+", Ref("X", I), Ref("Y", I)))),
            {"X": [0.0] * n, "Y": rng.normal(size=n).tolist()},
        ),
        (
            "indexed affine:     X[g(i)] = X[g(i)] + a[i]*X[f(i)]",
            Loop(n, Assign(Ref("X", TableIndex(perm)),
                           BinOp("+", Ref("X", TableIndex(perm)),
                                 BinOp("*", Ref("a", I), Ref("X", TableIndex(ftab)))))),
            {"X": rng.normal(size=m).tolist(), "a": (0.3 * rng.normal(size=n)).tolist()},
        ),
        (
            "rational chain:     X[i+1] = (2X[i]+1)/(X[i]+3)",
            Loop(n - 1, Assign(Ref("X", AffineIndex(1, 1)),
                               BinOp("/",
                                     BinOp("+", BinOp("*", Const(2.0), Ref("X", I)), Const(1.0)),
                                     BinOp("+", Ref("X", I), Const(3.0))))),
            {"X": [1.0] * n},
        ),
        (
            "histogram scatter:  H[b(i)] = H[b(i)] + W[i]",
            Loop(n, Assign(Ref("H", TableIndex(scatter)),
                           BinOp("+", Ref("H", TableIndex(scatter)), Ref("W", I)))),
            {"H": [0.0] * 8, "W": rng.random(size=n).tolist()},
        ),
        (
            "generic-op IR:      A[g(i)] = concat(A[f(i)], A[g(i)])",
            Loop(n, Assign(Ref("A", TableIndex(perm)),
                           OpApply(CONCAT, Ref("A", TableIndex(ftab)), Ref("A", TableIndex(perm))))),
            {"A": [(f"s{j}",) for j in range(m)]},
        ),
        (
            "degree-2 (outside): X[i+1] = X[i]*X[i] + Y[i]",
            Loop(n - 1, Assign(Ref("X", AffineIndex(1, 1)),
                               BinOp("+", BinOp("*", Ref("X", I), Ref("X", I)), Ref("Y", I)))),
            {"X": [0.3] * n, "Y": (0.1 * rng.random(size=n)).tolist()},
        ),
    ]

    print(f"{'loop':<55} {'class':<20} {'method':<20}")
    print("-" * 98)
    for name, loop, env in zoo:
        res = parallelize(loop, env)
        ref = evaluate_loop(loop, env)
        for arr in env:
            got, want = res.env[arr], ref[arr]
            ok = all(
                (x == y) or (isinstance(x, float) and abs(x - y) <= 1e-7 * max(1, abs(y)))
                for x, y in zip(got, want)
            )
            assert ok, (name, arr)
        method = res.method + (" (!)" if res.fallback else "")
        print(f"{name:<55} {res.recognition.ir_class.value:<20} {method:<20}")
    print()
    print("(!) = sequential fallback: the shape is outside the paper's")
    print("framework (here: degree 2 in the recurrence variable).")


if __name__ == "__main__":
    main()
