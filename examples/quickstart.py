#!/usr/bin/env python
"""Quickstart: define an indexed recurrence, solve it in parallel.

The paper's object of study is the sequential loop

    for i = 0..n-1:  A[g(i)] := op(A[f(i)], A[g(i)])

This example builds one with an intentionally *non-commutative*
operator (sequence concatenation) so you can see that the parallel
solver preserves operand order exactly, inspects the Lemma-1 traces,
and compares simulated instruction costs against the sequential loop.

Run:  python examples/quickstart.py
"""

from repro import CONCAT, OrdinaryIRSystem, run_ordinary, solve
from repro.core.traces import all_ordinary_traces, render_factors
from repro.pram import profile_ordinary

def main() -> None:
    # A chain with a twist: iteration i writes cell i+1 reading cell i,
    # except the last two iterations which hang off cell 0 directly.
    initial = [(name,) for name in "abcdefgh"]
    g = [1, 2, 3, 4, 5, 6, 7]
    f = [0, 1, 2, 3, 4, 0, 0]
    system = OrdinaryIRSystem.build(initial, g, f, CONCAT)

    print("Loop: for i in range(7): A[g(i)] = A[f(i)] + A[g(i)]  (tuple concat)")
    print(f"g = {g}")
    print(f"f = {f}")
    print()

    # 1. Ground truth: run the loop sequentially.
    sequential = run_ordinary(system)

    # 2. The paper's parallel algorithm: O(log n) pointer-jumping rounds.
    result = solve(system, collect_stats=True)
    parallel, stats = result.values, result.stats
    assert parallel == sequential
    print(f"parallel == sequential  (rounds={stats.rounds}, "
          f"op-work={stats.total_ops})")
    print()

    # 3. Lemma-1 traces: which initial values multiply into each cell.
    print("traces (cell <- product of initial values):")
    for cell, factors in sorted(all_ordinary_traces(system).items()):
        print(f"  A[{cell}] = {render_factors(factors)}"
              f"  ->  {parallel[cell]}")
    print()

    # 4. Simulated instruction costs (the paper's Fig-3 quantities).
    _, profile = profile_ordinary(system)
    print("instruction costs (SimParC-substitute units):")
    print(f"  sequential loop : {profile.sequential_time()}")
    for p in (1, 2, 4, 8):
        print(f"  parallel, P={p:<3}: {profile.parallel_time(p)}")
    print()
    print("With n this small the parallel version only wins for P >> log n;")
    print("run benchmarks/bench_fig3_ordinary_ir.py for the paper-scale sweep.")


if __name__ == "__main__":
    main()
