"""Figure 4 -- list-shaped (IR) vs. tree-shaped (GIR) traces.

The paper contrasts the trace of ``A[i] := A[i-1] * A[i]`` (a list:
one new factor per step) with ``A[i] := A[i-1] * A[i-2]`` (a binary
tree: exponential expansion).  This bench measures both trace sizes as
n grows and asserts the linear-vs-exponential separation that forces
the GIR solver to count powers instead of expanding.
"""

from repro.analysis.reporting import banner, series_table
from repro.core import CONCAT, GIRSystem, OrdinaryIRSystem, modular_mul
from repro.core.traces import chain_lengths, tree_sizes

NS = [4, 8, 12, 16, 20, 24]


def ir_trace_factors(n):
    """Factors in the last trace of the list-shaped loop."""
    sys_ = OrdinaryIRSystem.build(
        [(j,) for j in range(n + 1)],
        list(range(1, n + 1)),
        list(range(n)),
        CONCAT,
    )
    return int(chain_lengths(sys_)[-1]) + 1  # + terminal f-operand


def gir_trace_factors(n):
    """Factors in the last trace of the tree-shaped loop."""
    op = modular_mul(97)
    sys_ = GIRSystem.build(
        [1] * (n + 2),
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        op,
    )
    return tree_sizes(sys_)[-1]


def run_fig4():
    return {
        "n": NS,
        "list_trace_IR": [ir_trace_factors(n) for n in NS],
        "tree_trace_GIR": [gir_trace_factors(n) for n in NS],
    }


def test_fig4_shapes(benchmark):
    data = benchmark(run_fig4)
    lists = data["list_trace_IR"]
    trees = data["tree_trace_GIR"]
    # list traces grow linearly: n + 1 factors
    assert lists == [n + 1 for n in NS]
    # tree traces grow like Fibonacci: strictly super-linear, with the
    # golden-ratio growth factor between doublings
    for a, b in zip(trees, trees[1:]):
        assert b > 2 * a
    assert trees[-1] > 10_000 * lists[-1] / (NS[-1] + 1)


def main():
    data = run_fig4()
    print(banner("Figure 4: trace size, list (IR) vs tree (GIR)"))
    print(series_table("n", data["n"], {
        "list trace (A[i]:=A[i-1]*A[i])": data["list_trace_IR"],
        "tree trace (A[i]:=A[i-1]*A[i-2])": data["tree_trace_GIR"],
    }))
    print()
    print("The tree trace explodes (Fibonacci growth): expanding it is")
    print("hopeless, so GIR counts powers via CAP instead (Figs 5-9).")


if __name__ == "__main__":
    main()
