"""Figure 2 -- one concatenation (pointer-jumping) step.

The paper's figure shows two sub-traces being concatenated in a single
parallel step: values multiply (``A[g(i)] := A[N[g(i)]] . A[g(i)]``)
and pointers jump (``N[g(i)] := N[N[g(i)]]``).  This bench replays the
algorithm round by round on a single chain and checks the doubling
invariant: after round r, every unfinished sub-trace covers exactly
2^r factors.
"""

from repro.analysis.reporting import ascii_table, banner
from repro.core import CONCAT, OrdinaryIRSystem, run_ordinary
from repro.engine import solve

N = 16


def build():
    return OrdinaryIRSystem.build(
        [(f"s{j}",) for j in range(N + 1)],
        list(range(1, N + 1)),
        list(range(N)),
        CONCAT,
    )


def run_rounds():
    """Partial solves after r = 0, 1, 2, ... rounds."""
    system = build()
    full = solve(system, backend="python", collect_stats=True).stats
    frames = []
    for r in range(full.rounds + 1):
        res = solve(
            system, backend="python", collect_stats=True, max_rounds=r
        )
        out, stats = res.values, res.stats
        frames.append((r, out, stats))
    return system, frames


def test_fig2_doubling_invariant(benchmark):
    system, frames = benchmark(run_rounds)
    final = run_ordinary(system)
    # after round r the last cell's sub-trace covers 2^r factors, until
    # the terminal (which carries an extra f-operand factor) is absorbed
    for r, out, _ in frames:
        covered = len(out[N])  # tuple length = factors so far
        expected = N + 1 if 2**r >= N else 2**r
        assert covered == expected, (r, covered)
    assert frames[-1][1] == final
    # log2(N) rounds to finish the length-N chain
    assert frames[-1][0] == 4


def main():
    system, frames = run_rounds()
    print(banner(f"Figure 2: concatenation rounds on a chain of {N}"))
    rows = []
    for r, out, _ in frames:
        rows.append((r, len(out[N]), "".join(w[1:] for w in out[N])[:48]))
    print(ascii_table(("round", "factors covered (last cell)", "sub-trace"), rows,
                      align_right=[0, 1]))
    print("\nEach round doubles the factors a sub-trace covers (2^r + 1)")
    print("until the chain terminal is absorbed: the Fig-2 mechanism.")


if __name__ == "__main__":
    main()
