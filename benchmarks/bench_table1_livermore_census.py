"""Section-1 "table" -- the Livermore Loops recurrence census.

The paper: out of the 24 Livermore kernels, seven contain no
recurrence of any type, four contain classic linear recurrences, three
are excluded, and *all the rest contain indexed recurrences* -- the
motivation for the IR framework.  (The conference scan's kernel lists
are OCR-damaged; repro.livermore.classify documents the
reconstruction.)

This bench recomputes the census programmatically -- ten kernels are
classified by the actual loop recognizer on AST models of their
recurrence cores, the rest structurally -- and asserts the paper's
qualitative claim: the *indexed* group dominates the recurrence-bearing
kernels.
"""

from repro.analysis.reporting import banner
from repro.livermore.classify import PAPER_GROUPS, census, census_table


def run_census():
    return census(n=32, seed=0)


def test_table1_census(benchmark):
    entries = benchmark(run_census)
    groups = {}
    for e in entries:
        groups.setdefault(e.group, []).append(e.number)

    assert len(entries) == 24
    # the paper's headline claim: indexed recurrences dominate the
    # recurrence-bearing kernels
    assert len(groups["indexed"]) >= len(groups["linear"])
    assert len(groups["indexed"]) >= 8
    # kernels the paper names explicitly land where it says:
    assert 5 in groups["linear"] and 11 in groups["linear"] and 19 in groups["linear"]
    assert 23 in groups["indexed"]  # the section-3 showcase
    assert 1 in groups["none"] and 7 in groups["none"] and 12 in groups["none"]
    # paper's "no recurrence" group largely agrees with ours
    overlap = set(PAPER_GROUPS["none"]) & set(groups["none"])
    assert len(overlap) >= 4

    benchmark.extra_info["indexed"] = len(groups["indexed"])
    benchmark.extra_info["linear"] = len(groups["linear"])
    benchmark.extra_info["none"] = len(groups["none"])


def main():
    print(banner("Section 1: Livermore Loops recurrence census"))
    print(census_table(run_census()))
    print()
    print("paper's reconstructed grouping (OCR-damaged scan):")
    print(f"  none     : {PAPER_GROUPS['none']}")
    print(f"  linear   : {PAPER_GROUPS['linear']} "
          f"(+ one of {PAPER_GROUPS['linear_ambiguous']})")
    print(f"  excluded : {PAPER_GROUPS['excluded']} (candidate reading)")
    print("  indexed  : all remaining kernels")


if __name__ == "__main__":
    main()
