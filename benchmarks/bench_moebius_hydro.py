"""Section-3 example -- Livermore kernel 23 parallelized via Moebius.

The paper lifts the 2-D implicit hydrodynamics fragment

    X[i,j] := X[i,j] + 0.175*(Y[i] + X[i-1,j]*Z[i,j])

to 2x2 Moebius matrices and solves each column sweep as an OrdinaryIR
system in O(log n) steps, "without using any data dependence analysis
techniques".  This bench runs the full kernel both ways on the
canonical 101 x 7 grid, asserts numerical agreement, and reports the
simulated-instruction speedup of one column sweep.
"""

import math

import numpy as np

from repro.analysis.reporting import banner, series_table
from repro.core import OrdinaryIRSystem, processor_sweep
from repro.core.moebius import Mat2, moebius_ir_operator
from repro.livermore.data import kernel_inputs
from repro.livermore.kernels import k23
from repro.livermore.parallel import k23_parallel
from repro.pram import profile_ordinary

N = 100  # canonical kernel-23 grid height is 101 rows


def run_hydro(n=N):
    d = kernel_inputs(23, n, seed=1997)
    seq = k23(d)["za"]
    par = k23_parallel(d)["za"]
    err = max(
        abs(a - b) for ra, rb in zip(seq, par) for a, b in zip(ra, rb)
    )

    # the fully-automatic path: lower the double loop to a LoopProgram
    # and let the generic recognizer/Moebius machinery parallelize it
    from repro.livermore.frontend import k23_via_frontend

    auto, program_result = k23_via_frontend(d)
    err_auto = max(
        abs(a - b) for ra, rb in zip(seq, auto["za"]) for a, b in zip(ra, rb)
    )
    assert program_result.fully_parallel
    err = max(err, err_auto)

    # cost profile of one column sweep as a matrix OrdinaryIR system
    j = 1
    column = [d["za"][k][j] for k in range(n + 1)]
    coeff = [Mat2.constant(v) for v in column]
    for t, cell in enumerate(range(1, n)):
        coeff[cell] = Mat2.affine(0.175 * d["zv"][cell][j], 0.0)
    system = OrdinaryIRSystem(
        initial=coeff,
        g=np.arange(1, n),
        f=np.arange(0, n - 1),
        op=moebius_ir_operator(),
    )
    _, profile = profile_ordinary(system)
    return err, profile


def test_moebius_hydro(benchmark):
    err, profile = benchmark(run_hydro)
    assert err < 1e-9  # parallel == sequential
    # O(log n) rounds per sweep
    assert profile.rounds == math.ceil(math.log2(N - 1))
    # wins once P exceeds a small multiple of log n
    cross = profile.crossover_processors()
    assert cross is not None and cross <= 16 * math.log2(N)
    benchmark.extra_info["max_abs_error"] = err
    benchmark.extra_info["crossover_P"] = cross


def main():
    err, profile = run_hydro()
    print(banner(f"Section 3: Livermore kernel 23 via the Moebius reduction "
                 f"(grid {N + 2} x 7)"))
    print(f"max |parallel - sequential| over the grid: {err:.3e}")
    print(f"rounds per column sweep: {profile.rounds} (= ceil(log2 n))")
    print()
    grid = processor_sweep(256)
    rows = profile.sweep(grid)
    print("one column sweep, simulated instruction time:")
    print(series_table(
        "P",
        grid,
        {
            "moebius_parallel": [r["parallel_time"] for r in rows],
            "sequential": [r["sequential_time"] for r in rows],
            "speedup": [r["speedup"] for r in rows],
        },
    ))


if __name__ == "__main__":
    main()
