#!/usr/bin/env python
"""Regenerate every paper artifact into text files.

Runs each benchmark's ``main()`` and captures its output under
``artifacts/`` -- the single command that rebuilds everything
EXPERIMENTS.md quotes:

    python benchmarks/regenerate_all.py [--out artifacts]

With ``--json`` the harness additionally runs every benchmark under a
fresh :mod:`repro.obs` registry/tracer and writes ``BENCH_results.json``
(repo root by default; override with ``--json-out``): per-bench
wall-clock, round counts and op counts straight from the instrumented
solvers -- the machine-readable perf baseline future PRs diff against.

Exit code is nonzero when any benchmark raises *or* returns a nonzero
status.
"""

import argparse
import contextlib
import importlib
import io
import json
import os
import platform
import subprocess
import sys
import time
from datetime import datetime, timezone

BENCHES = [
    "bench_fig1_trace_example",
    "bench_fig2_concatenation",
    "bench_fig3_ordinary_ir",
    "bench_fig4_trace_shapes",
    "bench_fig5_fibonacci_powers",
    "bench_fig6_dependence_graph",
    "bench_fig9_cap_iterations",
    "bench_table1_livermore_census",
    "bench_moebius_hydro",
    "bench_baselines_scan",
    "bench_gir_processors",
    "bench_livermore_parallel",
    "bench_ablation_power_atomic",
    "bench_ablation_work_efficiency",
    "bench_ablation_scheduling",
    "bench_wallclock_engines",
    "bench_plan_reuse",
    "bench_gir_powers",
    "bench_shm",
    "bench_serve",
]

RESULTS_SCHEMA_VERSION = 2

# counters summed into the "rounds" / "ops" convenience totals
_ROUND_COUNTERS = ("solver.rounds", "cap.iterations", "pram.supersteps")
_OP_COUNTERS = (
    "solver.init_ops",
    "cap.edge_work",
    "gir.power_ops",
    "gir.combine_ops",
    "pram.superstep.work",
)


def _provenance():
    """Where/when/what produced this results file -- enough to judge
    whether two files are comparable before diffing wall clocks."""
    import numpy

    git_sha = None
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        ).stdout.strip() or None
    except Exception:
        pass
    return {
        "host": platform.node(),
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "cpu_count": os.cpu_count(),
        "git_sha": git_sha,
        "timestamp": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
    }


def _sum_counters(snapshot, names):
    by_name = {}
    for entry in snapshot:
        if entry["kind"] == "counter" and entry["name"] in names:
            by_name[entry["name"]] = by_name.get(entry["name"], 0) + entry["value"]
    return by_name


def _run_one(name, collect_obs):
    """Run one benchmark; returns a result record (never raises)."""
    record = {"name": name, "ok": True, "error": None, "wall_clock_s": None}
    buffer = io.StringIO()
    observed = contextlib.nullcontext((None, None))
    if collect_obs:
        from repro import obs

        observed = obs.observed()
    started = time.perf_counter()
    try:
        with observed as (_tracer, registry):
            module = importlib.import_module(name)
            with contextlib.redirect_stdout(buffer):
                rc = module.main()
            if rc not in (None, 0):
                raise RuntimeError(f"main() returned nonzero status {rc}")
            if registry is not None:
                snapshot = registry.snapshot()
                record["rounds"] = _sum_counters(snapshot, _ROUND_COUNTERS)
                record["ops"] = _sum_counters(snapshot, _OP_COUNTERS)
                record["metrics"] = snapshot
    except Exception as exc:  # keep going; report at the end
        record["ok"] = False
        record["error"] = f"{type(exc).__name__}: {exc}"
    record["wall_clock_s"] = round(time.perf_counter() - started, 4)
    record["output"] = buffer.getvalue()
    return record


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="artifacts", help="output directory")
    parser.add_argument(
        "--json",
        action="store_true",
        help="also write machine-readable results (BENCH_results.json)",
    )
    parser.add_argument(
        "--json-out",
        default=None,
        help="path for the JSON results (default: <repo>/BENCH_results.json)",
    )
    parser.add_argument(
        "--only",
        action="append",
        metavar="NAME",
        help="run only the named bench(es); repeatable",
    )
    args = parser.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    os.makedirs(args.out, exist_ok=True)

    selected = args.only if args.only else BENCHES
    unknown = [n for n in selected if n not in BENCHES]
    if unknown:
        print(f"unknown bench(es): {', '.join(unknown)}")
        return 2

    collect_obs = args.json
    results = []
    failures = []
    for name in selected:
        record = _run_one(name, collect_obs)
        results.append(record)
        if not record["ok"]:
            failures.append((name, record["error"]))
            print(f"FAIL  {name:<32} {record['wall_clock_s']:6.2f}s: "
                  f"{record['error']}")
            continue
        path = os.path.join(args.out, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(record["output"])
        print(f"ok    {name:<32} {record['wall_clock_s']:6.2f}s -> {path}")

    total = sum(r["wall_clock_s"] for r in results)

    if args.json:
        json_path = args.json_out or os.path.join(
            os.path.dirname(here), "BENCH_results.json"
        )
        provenance = _provenance()
        payload = {
            "schema_version": RESULTS_SCHEMA_VERSION,
            "generated_by": "benchmarks/regenerate_all.py",
            "provenance": provenance,
            "python": provenance["python"],
            "numpy": provenance["numpy"],
            "total_wall_clock_s": round(total, 4),
            "benches": [
                {k: v for k, v in r.items() if k != "output"} for r in results
            ],
        }
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        print(f"json  {json_path}")

    per_bench = "  ".join(
        f"{r['name'].replace('bench_', '')}={r['wall_clock_s']:.2f}s"
        for r in results
    )
    if failures:
        print(f"\n{len(failures)} artifact(s) failed "
              f"(total {total:.2f}s: {per_bench})")
        return 1
    print(f"\nall {len(results)} artifacts regenerated into {args.out}/ "
          f"(total {total:.2f}s: {per_bench})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
