#!/usr/bin/env python
"""Regenerate every paper artifact into text files.

Runs each benchmark's ``main()`` and captures its output under
``artifacts/`` -- the single command that rebuilds everything
EXPERIMENTS.md quotes:

    python benchmarks/regenerate_all.py [--out artifacts]
"""

import argparse
import contextlib
import importlib
import io
import os
import sys
import time

BENCHES = [
    "bench_fig1_trace_example",
    "bench_fig2_concatenation",
    "bench_fig3_ordinary_ir",
    "bench_fig4_trace_shapes",
    "bench_fig5_fibonacci_powers",
    "bench_fig6_dependence_graph",
    "bench_fig9_cap_iterations",
    "bench_table1_livermore_census",
    "bench_moebius_hydro",
    "bench_baselines_scan",
    "bench_gir_processors",
    "bench_livermore_parallel",
    "bench_ablation_power_atomic",
    "bench_ablation_work_efficiency",
    "bench_ablation_scheduling",
    "bench_wallclock_engines",
]


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="artifacts", help="output directory")
    args = parser.parse_args()

    here = os.path.dirname(os.path.abspath(__file__))
    sys.path.insert(0, here)
    os.makedirs(args.out, exist_ok=True)

    failures = []
    for name in BENCHES:
        module = importlib.import_module(name)
        buffer = io.StringIO()
        started = time.perf_counter()
        try:
            with contextlib.redirect_stdout(buffer):
                module.main()
        except Exception as exc:  # keep going; report at the end
            failures.append((name, exc))
            print(f"FAIL  {name}: {exc}")
            continue
        elapsed = time.perf_counter() - started
        path = os.path.join(args.out, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(buffer.getvalue())
        print(f"ok    {name:<32} {elapsed:6.2f}s -> {path}")

    if failures:
        print(f"\n{len(failures)} artifact(s) failed")
        return 1
    print(f"\nall {len(BENCHES)} artifacts regenerated into {args.out}/")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
