"""Figure 1 -- the Ordinary IR trace example.

The paper's figure shows, for a small loop, the closed-form trace of
every array cell after execution: some cells preserve their initial
value (never assigned), others are products of several initial values
(Lemma 1).  The conference scan's exact instance is OCR-damaged, so we
regenerate both the loop *as printed* (``A[i] := A[i+4]*A[i]``, all
traces length 2 because f always points forward) and a chained variant
(``A[i+4] := A[i]*A[i+4]``) exhibiting the multi-factor traces the
figure discusses.
"""

from repro.analysis.reporting import ascii_table, banner
from repro.core import CONCAT, OrdinaryIRSystem, run_ordinary
from repro.engine import solve
from repro.core.traces import all_ordinary_traces, render_factors

M = 12
N = 8


def literal_loop():
    """``for i = 1..8: A[i] := A[i+4] * A[i]`` (1-based), m = 12."""
    return OrdinaryIRSystem.build(
        [(j + 1,) for j in range(M)], list(range(N)), [i + 4 for i in range(N)], CONCAT
    )


def chained_loop():
    """``for i = 1..8: A[i+4] := A[i] * A[i+4]``: genuine chains."""
    return OrdinaryIRSystem.build(
        [(j + 1,) for j in range(M)], [i + 4 for i in range(N)], list(range(N)), CONCAT
    )


def run_fig1():
    out = {}
    for name, system in (("literal", literal_loop()), ("chained", chained_loop())):
        traces = all_ordinary_traces(system)
        res = solve(system, backend="python", collect_stats=True)
        parallel, stats = res.values, res.stats
        assert parallel == run_ordinary(system)
        out[name] = (system, traces, stats)
    return out


def test_fig1_traces(benchmark):
    out = benchmark(run_fig1)
    _, literal_traces, _ = out["literal"]
    # as printed: every trace has exactly two factors, cells 9..12
    # (1-based) preserve their initial values
    assert all(len(t) == 2 for t in literal_traces.values())
    assert set(literal_traces) == set(range(N))
    # chained variant: traces grow along the chain, max 3 factors at m=12
    _, chained_traces, stats = out["chained"]
    assert max(len(t) for t in chained_traces.values()) == 3
    assert stats.rounds == 1  # chains of length 2 need one concatenation


def main():
    out = run_fig1()
    for name, title in (("literal", "for i=1..8: A[i] := A[i+4]*A[i]"),
                        ("chained", "for i=1..8: A[i+4] := A[i]*A[i+4]")):
        system, traces, stats = out[name]
        print(banner(f"Figure 1 ({name} loop): {title}   [1-based rendering]"))
        rows = []
        for cell in range(M):
            if cell in traces:
                rows.append((f"A'[{cell + 1}]", render_factors(traces[cell], one_based=True)))
            else:
                rows.append((f"A'[{cell + 1}]", f"A[{cell + 1}]  (initial value preserved)"))
        print(ascii_table(("cell", "trace"), rows))
        print(f"parallel solve: {stats.rounds} concatenation round(s)\n")


if __name__ == "__main__":
    main()
