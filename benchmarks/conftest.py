"""Benchmark harness conventions.

Every ``bench_*.py`` file regenerates one artifact of the paper (a
figure, a table, or an ablation) and can be used two ways:

* ``pytest benchmarks/ --benchmark-only`` -- times the computational
  core with pytest-benchmark and asserts the artifact's *shape*
  (who wins, by roughly what factor, where crossovers fall);
* ``python benchmarks/bench_<name>.py`` -- prints the full
  paper-style artifact (the series/table quoted in EXPERIMENTS.md).
"""

import pytest
