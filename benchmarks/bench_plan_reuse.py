"""Plan-reuse benchmark: the engine's cacheable-Plan payoff.

Not a paper artifact -- the perf contract of the Plan/Execute split:
ten solves sharing one set of index maps (``n = 100,000`` ordinary IR)
must run at least 2x faster when they reuse a cached plan than ten
fresh ``solve``s that each replan from scratch against the pure-Python
reference.  ``main()`` returns nonzero when the contract is violated,
so ``regenerate_all.py`` (and CI) fail on a plan-cache regression.

Arms
----
* ``fresh python``   -- plan + execute per call, pure-Python backend
  (the historical ``solve_ordinary`` cost profile);
* ``fresh numpy``    -- plan + execute per call, vectorized backend;
* ``planned numpy``  -- plan once, replay it ten times;
* ``batched numpy``  -- one planned ``(k, m)`` sweep over all ten
  value vectors.
"""

import time

import numpy as np

from repro.core import FLOAT_ADD, OrdinaryIRSystem
from repro.engine import clear_plan_cache, execute, solve, solve_batch

N = 100_000
SOLVES = 10
MIN_SPEEDUP = 2.0


def build(n=N):
    return OrdinaryIRSystem.build(
        np.full(n + 1, 0.5),
        np.arange(1, n + 1),
        np.arange(n),
        FLOAT_ADD,
    )


def _time(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run(n=N, solves=SOLVES):
    system = build(n)
    rng = np.random.default_rng(42)
    rows = [rng.uniform(-1.0, 1.0, size=n + 1).tolist() for _ in range(solves)]

    def fresh(backend):
        for _ in range(solves):
            clear_plan_cache()  # every call replans
            solve(system, backend=backend)

    fresh_python = _time(lambda: fresh("python"))
    fresh_numpy = _time(lambda: fresh("numpy"))

    clear_plan_cache()
    plan = solve(system, backend="numpy", reuse_plan=False).plan

    def planned():
        for _ in range(solves):
            execute(plan, system, backend="numpy")

    planned_numpy = _time(planned)
    batched_numpy = _time(lambda: solve_batch(system, rows, plan=plan))

    return {
        "n": n,
        "solves": solves,
        "fresh_python_s": fresh_python,
        "fresh_numpy_s": fresh_numpy,
        "planned_numpy_s": planned_numpy,
        "batched_numpy_s": batched_numpy,
        "speedup_vs_fresh_python": fresh_python / planned_numpy,
        "speedup_vs_fresh_numpy": fresh_numpy / planned_numpy,
    }


def main() -> int:
    results = run()
    print(f"plan reuse, {results['solves']} solves of an "
          f"n = {results['n']:,} ordinary IR chain")
    print(f"{'fresh python (replan each)':<28} {results['fresh_python_s']:8.4f}s")
    print(f"{'fresh numpy (replan each)':<28} {results['fresh_numpy_s']:8.4f}s")
    print(f"{'planned numpy (one plan)':<28} {results['planned_numpy_s']:8.4f}s")
    print(f"{'batched numpy (one sweep)':<28} {results['batched_numpy_s']:8.4f}s")
    print(f"speedup vs fresh python: "
          f"{results['speedup_vs_fresh_python']:.1f}x "
          f"(vs fresh numpy: {results['speedup_vs_fresh_numpy']:.1f}x)")
    if results["speedup_vs_fresh_python"] < MIN_SPEEDUP:
        print(f"REGRESSION: plan reuse under {MIN_SPEEDUP}x "
              f"over fresh python solves")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
