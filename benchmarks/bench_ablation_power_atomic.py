"""Ablation -- atomic powers vs. naive trace expansion (GIR).

The paper argues (section 4) that GIR parallelization is only
efficient if ``A[i]^k`` is an atomic operation, because traces can be
exponentially long.  This ablation measures both strategies on the
Fibonacci recurrence: the CAP + atomic-power pipeline does O(n) power
and combine operations, while full expansion performs one ``op`` per
trace factor -- Fibonacci-many.  The separation is the design point.
"""

from repro.analysis.reporting import banner, series_table
from repro.core import GIRSystem, modular_mul, run_gir
from repro.core.traces import gir_trace_tree, tree_sizes
from repro.core.operators import make_operator
from repro.engine import solve

NS = [6, 10, 14, 18, 22, 26]
MOD = 97


def build(n, op):
    return GIRSystem.build(
        [2, 3] + [1] * n,
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        op,
    )


def counting_operator():
    counter = {"ops": 0}

    def fn(x, y):
        counter["ops"] += 1
        return (x * y) % MOD

    op = make_operator(
        "counting_mul",
        fn,
        commutative=True,
        power=lambda x, k: pow(x, k, MOD),
    )
    return op, counter


def expansion_cost(n):
    """op-applications to evaluate the last trace by full expansion
    *without* sharing (the true expanded tree: factors - 1)."""
    op = modular_mul(MOD)
    return tree_sizes(build(n, op))[-1] - 1


def pipeline_cost(n):
    """op/power-applications of the CAP pipeline, measured."""
    op, counter = counting_operator()
    system = build(n, op)
    result = solve(system, collect_stats=True)
    out, stats = result.values, result.stats
    assert out == run_gir(system)
    return counter["ops"] + stats.power_ops


def run_ablation():
    return {
        "n": NS,
        "atomic_power_pipeline": [pipeline_cost(n) for n in NS],
        "naive_expansion": [expansion_cost(n) for n in NS],
    }


def test_ablation_power_atomic(benchmark):
    data = benchmark(run_ablation)
    pipeline = data["atomic_power_pipeline"]
    naive = data["naive_expansion"]
    # pipeline cost grows linearly-ish; expansion exponentially
    assert pipeline[-1] <= 4 * NS[-1]
    assert naive[-1] > 100 * pipeline[-1]
    ratio_growth = [b / a for a, b in zip(naive, naive[1:])]
    assert all(r > 2 for r in ratio_growth)  # golden-ratio^4 per step of 4


def main():
    data = run_ablation()
    print(banner("Ablation: atomic powers vs naive trace expansion "
                 "(GIR, Fibonacci recurrence)"))
    print(series_table("n", data["n"], {
        "CAP + atomic powers (ops)": data["atomic_power_pipeline"],
        "naive expansion (ops)": data["naive_expansion"],
    }))
    print()
    print("Without atomic powers the op count is the expanded trace size")
    print("(Fibonacci growth); with them it stays O(n) -- the paper's")
    print("argument for treating A[i]^k as a single operation.")


if __name__ == "__main__":
    main()
