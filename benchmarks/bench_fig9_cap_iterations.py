"""Figures 7-9 -- CAP iterations: path multiplication and addition.

Figure 9 steps the CAP algorithm on two example graphs, showing the
edge sets after each iteration (new composed edges, consumed edges
dropped, parallel edges summed).  This bench replays the iterations on
the same two shapes -- the Fibonacci dependence graph and a double
chain (whose path counts are powers of two, the paper's CAP(G)
example) -- asserting the doubling convergence and the exact labels.
"""

import math

from repro.analysis.reporting import ascii_table, banner
from repro.core import GIRSystem, modular_add
from repro.core.cap import cap_iterations, count_all_paths
from repro.core.depgraph import build_dependence_graph

N = 8


def fibonacci_graph(n=N):
    op = modular_add(97)
    return build_dependence_graph(GIRSystem.build(
        [1] * (n + 2),
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        op,
    ))


def double_chain_graph(n=N):
    """v_i has TWO edges to v_{i-1} (h = f): 2^i paths to the leaf."""
    op = modular_add(97)
    return build_dependence_graph(GIRSystem.build(
        [1] * (n + 1),
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        [i for i in range(n)],
        op,
    ))


def run_fig9():
    out = {}
    for name, graph in (("fibonacci", fibonacci_graph()),
                        ("double-chain", double_chain_graph())):
        frames = list(cap_iterations(graph))
        out[name] = (graph, frames)
    return out


def test_fig9_iterations(benchmark):
    out = benchmark(run_fig9)

    graph, frames = out["fibonacci"]
    assert len(frames) - 1 <= math.ceil(math.log2(graph.depth()))
    assert frames[-1] == count_all_paths(graph).powers

    graph, frames = out["double-chain"]
    # paper's CAP(G) example: exactly 2^i paths from the leaf to v_i
    final = frames[-1]
    for i in range(graph.n):
        assert final[i] == {graph.n: 2 ** (i + 1)}
    # edges halve their distance-to-leaf each iteration
    assert len(frames) - 1 == math.ceil(math.log2(graph.depth()))


def main():
    out = run_fig9()
    for name, (graph, frames) in out.items():
        print(banner(f"Figure 9 ({name} graph, n = {N}): CAP iterations"))
        for t, frame in enumerate(frames):
            rows = []
            for u in range(graph.n):
                edges = ", ".join(
                    f"{graph.node_label(v)}[{x}]" for v, x in sorted(frame[u].items())
                )
                rows.append((graph.node_label(u), edges))
            label = "initial edges" if t == 0 else f"after iteration {t}"
            print(f"-- {label}")
            print(ascii_table(("node", "edges"), rows))
        print()


if __name__ == "__main__":
    main()
