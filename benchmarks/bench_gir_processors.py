"""Extension -- GIR processor sweep (the O(n^2)-processor regime).

The paper gives GIR an ``O(log^2 n)``-ish schedule "using up to
``O(n^2)`` processors" but reports no measurement for it.  This bench
fills that gap with the same instrumentation as Fig 3: simulated
instruction time of the full GIR pipeline (graph build -> CAP
doubling -> power gather -> combine) against the sequential loop, as a
function of P.

Expected (and asserted) shape: unlike OrdinaryIR, GIR performs far
more *work* than the sequential loop (CAP touches every (node, leaf)
pair), so the crossover sits at a much larger P -- but with enough
processors the log-depth pipeline wins, which is the theorem's
content.
"""

import math

from repro.analysis.reporting import banner, series_table
from repro.core import GIRSystem, modular_mul, processor_sweep, run_gir
from repro.pram import profile_gir

N = 512


def build(n=N):
    return GIRSystem.build(
        [2, 3] + [1] * n,
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        modular_mul(10**9 + 7),
    )


def run_sweep(n=N):
    system = build(n)
    result, profile = profile_gir(system)
    assert result == run_gir(system)
    grid = processor_sweep(max(profile.max_useful_processors(), 1))
    rows = [
        {
            "P": p,
            "gir_parallel": profile.parallel_time(p),
            "sequential": profile.sequential_time(),
        }
        for p in grid
    ]
    return profile, grid, rows


def test_gir_processor_sweep(benchmark):
    profile, grid, rows = benchmark(run_sweep)
    times = [r["gir_parallel"] for r in rows]
    seq = profile.sequential_time()

    # monotone improvement with P
    assert times == sorted(times, reverse=True)
    # GIR is work-inefficient: P = 1 is far slower than sequential
    assert times[0] > 10 * seq
    # ... but with enough processors the parallel pipeline wins
    assert times[-1] < seq
    # the useful processor count is super-linear in n (paper: up to n^2)
    assert profile.max_useful_processors() > N
    benchmark.extra_info["max_useful_P"] = profile.max_useful_processors()


def main():
    profile, grid, rows = run_sweep()
    print(banner(f"Extension: GIR processor sweep, "
                 f"A[i] := A[i-1]*A[i-2], n = {N}"))
    shown = [g for g in grid if g >= 16] or grid
    print(series_table("P", shown, {
        "gir_parallel": [r["gir_parallel"] for r in rows if r["P"] in shown],
        "sequential": [r["sequential"] for r in rows if r["P"] in shown],
        "speedup": [
            r["sequential"] / r["gir_parallel"] for r in rows if r["P"] in shown
        ],
    }))
    print()
    print(f"max useful processors: {profile.max_useful_processors():,} "
          f"(n = {N}; the paper allots up to O(n^2))")
    print("GIR pays a big work premium for path counting; it wins only in")
    print("the massively-parallel regime -- consistent with the paper's")
    print("O(n^2)-processor allocation and its P-vs-NC caveat.")


if __name__ == "__main__":
    main()
