"""Ablation -- active-set (fork-bounded) scheduling vs. naive
re-forking of every trace each round.

The paper measured "a more efficient version of the algorithm which
forks only up to P processes at the same time": the host scheduler
keeps a work queue of *still-active* traces and dispatches only those,
in bursts of P.  The naive formulation instead forks one process per
trace per round -- every trace at least re-checks its pointer even
after its trace is complete.

On workloads where most traces finish early (here: one long chain plus
many length-1 traces -- a common shape for scatter/fold loops) the
naive version keeps paying for finished traces every round, a
multiplicative overhead approaching the round count.
"""

import math

import numpy as np

from repro.analysis.reporting import banner, series_table
from repro.core import FLOAT_MUL, OrdinaryIRSystem, processor_sweep
from repro.pram import profile_ordinary
from repro.pram.instructions import DEFAULT_COST_MODEL

CHAIN = 2048  # one chain of this length ...
SINGLETONS = 6144  # ... plus this many trivial traces


def build():
    n = CHAIN + SINGLETONS
    m = n + 1 + SINGLETONS
    g = np.concatenate([
        np.arange(1, CHAIN + 1),  # the chain: g(i) = i+1, f(i) = i
        np.arange(CHAIN + 1, CHAIN + 1 + SINGLETONS),  # singletons
    ])
    f = np.concatenate([
        np.arange(0, CHAIN),
        np.arange(CHAIN + 1 + SINGLETONS - 1, CHAIN + 1 + SINGLETONS - 1 + SINGLETONS) % m,
    ])
    initial = np.full(m, 1.0000001)
    return OrdinaryIRSystem.build(initial, g, f, FLOAT_MUL)


def naive_time(profile, processors):
    """Every trace is re-forked every round: each of the n virtual
    processes is scheduled per round (finished ones still pay the
    pointer check + fork), in bursts of P."""
    cm = DEFAULT_COST_MODEL
    fork = cm.superstep_overhead()

    def step(active, unit):
        return math.ceil(active / processors) * (unit + fork)

    total = step(profile.n, cm.ordinary_init_writer())
    total += step(profile.n, cm.ordinary_init_links(profile.op_cost))
    for _ in profile.active_per_round:
        total += step(profile.n, cm.ordinary_concat(profile.op_cost))
    return total


def run_ablation():
    _, profile = profile_ordinary(build())
    grid = processor_sweep(1024)
    bounded = [profile.parallel_time(p) for p in grid]
    naive = [naive_time(profile, p) for p in grid]
    return profile, grid, bounded, naive


def test_ablation_scheduling(benchmark):
    profile, grid, bounded, naive = benchmark(run_ablation)
    for b, u in zip(bounded, naive):
        assert b <= u
    # most traces are singletons that finish at init: the active-set
    # scheduler skips them in every one of the ~log2(CHAIN) rounds
    ratios = [u / b for b, u in zip(bounded, naive)]
    assert ratios[0] > 2.0  # large win already at P = 1
    assert all(r >= 1.0 for r in ratios)
    benchmark.extra_info["ratio_at_P1"] = round(ratios[0], 2)


def main():
    profile, grid, bounded, naive = run_ablation()
    print(banner(
        f"Ablation: active-set vs naive per-round forking "
        f"(chain {CHAIN} + {SINGLETONS} singleton traces, "
        f"{profile.rounds} rounds)"
    ))
    print(series_table("P", grid, {
        "active_set (paper)": bounded,
        "naive_refork": naive,
        "overhead_ratio": [u / b for u, b in zip(naive, bounded)],
    }))
    print()
    print("Once a trace completes, the fork-bounded scheduler never")
    print("dispatches it again; the naive version re-forks all n traces")
    print("every round -- the overhead the paper's refinement removes.")


if __name__ == "__main__":
    main()
