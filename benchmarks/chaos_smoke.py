#!/usr/bin/env python
"""CI gate: the serving stack must survive every chaos fault class.

Runs one single-fault scenario per chaos kind against the REAL shm
worker pool at ``n >= 100k`` (int64 ADD chain, full differential
verification) and requires the **exact** sequential-oracle answer from
every one -- via whichever recovery path the fault demands:

==========  =============================  ==========================
scenario    injected fault                 required evidence
==========  =============================  ==========================
kill        worker hard-exit mid-round     respawn >= 1, served on shm
hang        worker sleeps 60s mid-round    watchdog kill >= 1, respawn
                                           >= 1, served on shm
slow        sub-watchdog 50ms sleep        NO recovery action (false-
                                           positive guard), served on
                                           shm
corrupt     scribbled shard post-combine   caught by verification,
                                           failover to numpy
kill-x2     kill on every retry attempt    retry exhausted, failover
                                           to numpy
==========  =============================  ==========================

Recovery latency is bounded: every scenario must finish within
``LATENCY_BUDGET_S`` (hang's budget additionally covers the watchdog).
After the sweep the pools are shut down and ``/dev/shm`` is checked
for leftover ``repro_*`` segments -- a leak fails the gate.

Exit 0 on success, 1 on any violated requirement.
"""

import argparse
import glob
import os
import sys

N = int(os.environ.get("REPRO_CHAOS_N", "100000"))
WATCHDOG_S = float(os.environ.get("REPRO_CHAOS_WATCHDOG_S", "1.0"))
LATENCY_BUDGET_S = float(os.environ.get("REPRO_CHAOS_LATENCY_S", "60.0"))


def shm_segments():
    return set(glob.glob("/dev/shm/repro_*"))


def scenarios():
    from repro.chaos import ChaosPlan

    return [
        # (name, plan, requirements: dict of report-key -> predicate)
        (
            "kill",
            ChaosPlan.single("kill", round=1, rank=0),
            {
                "backend": lambda v: v == "shm",
                "respawns": lambda v: v >= 1,
            },
        ),
        (
            "hang",
            ChaosPlan.single("hang", round=1, rank=0, delay_s=60.0),
            {
                "backend": lambda v: v == "shm",
                "hang_kills": lambda v: v >= 1,
                "respawns": lambda v: v >= 1,
            },
        ),
        (
            "slow",
            ChaosPlan.single("slow", round=1, rank=0, delay_s=0.05),
            {
                "backend": lambda v: v == "shm",
                "respawns": lambda v: v == 0,
                "hang_kills": lambda v: v == 0,
            },
        ),
        (
            "corrupt",
            ChaosPlan.single("corrupt", round=1, rank=0),
            {
                "backend": lambda v: v == "numpy",
                "failover_from": lambda v: v == "shm",
                "reroutes": lambda v: v >= 1,
            },
        ),
        (
            "kill-x2",
            ChaosPlan.single("kill", round=1, rank=0, attempts=(0, 1)),
            {
                "backend": lambda v: v == "numpy",
                "failover_from": lambda v: v == "shm",
            },
        ),
    ]


def run_one(name, plan, checks, workers):
    from repro.chaos import run_chaos
    from repro.resilience.breaker import reset_breakers

    # every scenario starts with a closed ladder: no breaker state
    # bleeding between fault classes
    reset_breakers()
    report = run_chaos(
        plan, n=N, workers=workers, watchdog_s=WATCHDOG_S, retries=1
    )
    failures = []
    if not report["ok"]:
        failures.append(f"not ok (error={report['error']})")
    if not report["oracle_exact"]:
        failures.append("values diverged from the sequential oracle")
    budget = LATENCY_BUDGET_S + (WATCHDOG_S * 4 if name == "hang" else 0)
    if report["latency_s"] > budget:
        failures.append(
            f"recovery latency {report['latency_s']}s > budget {budget}s"
        )
    for key, predicate in checks.items():
        if not predicate(report[key]):
            failures.append(f"{key}={report[key]!r} violates the scenario")
    line = (
        f"  {name:<8} backend={report['backend']} "
        f"respawns={report['respawns']} hang_kills={report['hang_kills']} "
        f"reroutes={report['reroutes']} latency={report['latency_s']}s"
    )
    print(line, flush=True)
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=int(os.environ.get("REPRO_CHAOS_WORKERS", "4")),
    )
    args = parser.parse_args(argv)

    from repro.engine import shutdown_pools

    before = shm_segments()
    print(
        f"chaos smoke: n={N} workers={args.workers} "
        f"watchdog={WATCHDOG_S}s",
        flush=True,
    )
    all_failures = []
    for name, plan, checks in scenarios():
        for failure in run_one(name, plan, checks, args.workers):
            all_failures.append(f"{name}: {failure}")

    shutdown_pools()
    leaked = sorted(shm_segments() - before)
    if leaked:
        all_failures.append(f"segments outlived the run: {leaked}")

    if all_failures:
        print("chaos smoke FAILED:", file=sys.stderr)
        for failure in all_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(
        "chaos smoke ok: every fault class recovered to the exact "
        "oracle, no segment leaked"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
