"""Shared-memory backend benchmark: the multiprocess payoff gate.

Not a paper artifact -- the perf contract of the ``shm`` backend: one
``n = 1,000,000`` ordinary IR chain (int64 ADD, the paper's canonical
prefix-sum shape) must solve faster through the 4-worker
shared-memory pool than through the single-process pure-Python
backend, and -- under ``--check`` (the default here and in
``regenerate_all.py``) -- element-exactly match the sequential oracle.
``main()`` returns nonzero when either contract is violated, so
``regenerate_all.py`` (and CI) fail on an shm regression.

Arms
----
* ``python 1proc``  -- the interpreted per-element reference backend;
* ``shm 4 workers`` -- rounds fanned across the worker pool as
  contiguous n/P shards over shared memory.

Plans are pre-built for both arms (the gate measures execution, not
planning) and the pool is warmed with one small solve so process
spawn cost is not on the clock.
"""

import argparse
import time

import numpy as np

from repro.core import ADD, OrdinaryIRSystem, run_ordinary
from repro.engine import solve
from repro.engine.shm_pool import shutdown_pools

N = 1_000_000
WORKERS = 4


def build(n=N):
    rng = np.random.default_rng(7)
    return OrdinaryIRSystem.build(
        rng.integers(0, 1_000, size=n + 1),
        np.arange(1, n + 1),
        np.arange(n),
        ADD,
    )


def _time(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def run(n=N, workers=WORKERS, check=True):
    system = build(n)

    # Warm the pool (worker spawn + tiny schedule upload off the clock).
    solve(build(64), backend="shm", options={"workers": workers})

    plan = solve(system, backend="numpy").plan  # shared planning cost
    shm_res, shm_s = _time(
        lambda: solve(
            system, backend="shm", plan=plan, options={"workers": workers}
        )
    )
    py_res, py_s = _time(lambda: solve(system, backend="python", plan=plan))

    speedup = py_s / shm_s if shm_s > 0 else float("inf")
    print(f"n={n:,}  rounds={plan.rounds}  workers={workers}")
    print(f"  python 1proc      : {py_s:8.3f}s")
    print(f"  shm {workers} workers     : {shm_s:8.3f}s")
    print(f"  speedup           : {speedup:8.2f}x  (gate: > 1.0)")

    ok = shm_s < py_s
    if not ok:
        print("GATE FAILED: shm did not beat the single-process python "
              "backend")

    if check:
        oracle = run_ordinary(system)
        exact = shm_res.values == oracle and py_res.values == oracle
        print(f"  oracle parity     : {'exact' if exact else 'MISMATCH'}")
        ok = ok and exact

    return ok, speedup


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--workers", type=int, default=WORKERS)
    parser.add_argument(
        "--check",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="verify element-exact parity with the sequential oracle",
    )
    args, _unknown = parser.parse_known_args()
    try:
        ok, _ = run(n=args.n, workers=args.workers, check=args.check)
    finally:
        shutdown_pools()
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
