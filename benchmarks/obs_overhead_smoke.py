#!/usr/bin/env python
"""CI smoke: observability must be (nearly) free when off.

Three measurements on one n=100k ordinary float solve (numpy backend,
plan cache warm), using min-of-trials (the noise-robust estimator --
the minimum is the run with the least scheduler interference):

1. **silenced**  -- obs disabled *and* the flight recorder's record
   hook stubbed out: the pre-telemetry cost of the solve.
2. **disabled**  -- the default production path: no registry
   installed, flight recorder buffering its handful of events per
   solve.  Must be within ``DISABLED_BUDGET`` (1%) of silenced.
3. **enabled**   -- under ``obs.observed()``: spans + metrics on.
   Must be within ``ENABLED_BUDGET`` (5%) of disabled.

Overhead is the median of paired per-trial ratios (trials are
interleaved in shuffled order), and a breached budget is remeasured
up to ``MAX_ATTEMPTS`` times before failing -- a load burst inflates
one round, a real regression inflates all of them.

Plus the aggregation contract: an observed ``shm`` solve must surface
at least one ``proc=worker-N`` labeled series per worker, and the
rolled-up (unlabeled) series must exist master-side.

Exit 0 on success, 1 on any violated budget; ``repro obs``-level
functional coverage lives in the test suite -- this job only guards
the overhead envelope and the per-worker fan-in.
"""

import os
import random
import statistics
import sys
import time

N = int(os.environ.get("REPRO_SMOKE_N", "100000"))
TRIALS = int(os.environ.get("REPRO_SMOKE_TRIALS", "9"))
REPEATS = int(os.environ.get("REPRO_SMOKE_REPEATS", "3"))
MAX_ATTEMPTS = int(os.environ.get("REPRO_SMOKE_ATTEMPTS", "3"))
SHM_WORKERS = int(os.environ.get("REPRO_SMOKE_WORKERS", "2"))
DISABLED_BUDGET = 0.01
ENABLED_BUDGET = 0.05


def build(n=N):
    import numpy as np

    from repro.core import FLOAT_ADD, OrdinaryIRSystem

    rng = np.random.default_rng(7)
    return OrdinaryIRSystem.build(
        rng.random(n + 1).tolist(),
        np.arange(1, n + 1),
        np.arange(n),
        FLOAT_ADD,
    )


def timed_interleaved(variants, trials=TRIALS, repeats=REPEATS):
    """Raw per-trial wall clocks, trials interleaved round-robin so
    transient machine load penalizes every variant equally instead of
    whichever group ran during the spike.

    Each variant is a callable taking ``repeats`` and returning the
    mean seconds per solve -- the variant owns its own timing so it
    can exclude one-time setup (installing a registry) from the
    steady-state cost.  The inner repeat averages out scheduler fat
    tails that a single run would eat whole.  Variant order is
    shuffled per trial (deterministically) so a sustained load burst
    cannot systematically land on whichever variant runs last."""
    samples = {name: [] for name in variants}
    order = list(variants)
    rng = random.Random(1337)
    for _ in range(trials):
        rng.shuffle(order)
        for name in order:
            samples[name].append(variants[name](repeats))
    return samples


def paired_overhead(baseline, candidate):
    """Median of per-trial overhead ratios.

    Each trial's baseline and candidate run back-to-back under the
    same transient load, so the per-trial ratio cancels drift that a
    ratio-of-aggregates (min/min or median/median) cannot -- the
    noise floor drops well below the 1% budget this script gates on.
    """
    return statistics.median(
        c / b - 1.0 for b, c in zip(baseline, candidate)
    )


def main() -> int:
    from repro import obs
    from repro.engine import solve
    from repro.obs import recorder

    system = build()
    for _ in range(3):  # warm plan cache, numpy, and the allocator
        solve(system, backend="numpy")

    failures = []

    def run_solves(repeats):
        started = time.perf_counter()
        for _ in range(repeats):
            solve(system, backend="numpy")
        return (time.perf_counter() - started) / repeats

    def silenced_sample(repeats):
        # stub the recorder hook: the only always-on v2 cost
        ring = recorder.get_recorder()
        real_record = ring.record
        ring.record = lambda *a, **k: None
        try:
            return run_solves(repeats)
        finally:
            ring.record = real_record

    def disabled_sample(repeats):
        return run_solves(repeats)  # the default production path

    def enabled_sample(repeats):
        # registry install is once-per-process in production, so the
        # context entry sits outside the timed region: this measures
        # the steady-state per-solve cost of spans + metrics
        with obs.observed():
            return run_solves(repeats)

    # Gate on the best of up to MAX_ATTEMPTS measurement rounds: a
    # load burst can only inflate a round's overhead, so the minimum
    # across rounds is the least-contaminated estimate, and a genuine
    # regression fails every round.
    best_disabled = best_enabled = None
    for attempt in range(1, MAX_ATTEMPTS + 1):
        samples = timed_interleaved({
            "silenced": silenced_sample,
            "disabled": disabled_sample,
            "enabled": enabled_sample,
        })
        disabled_overhead = paired_overhead(
            samples["silenced"], samples["disabled"]
        )
        enabled_overhead = paired_overhead(
            samples["disabled"], samples["enabled"]
        )
        print(f"attempt {attempt}/{MAX_ATTEMPTS}: n={N} trials={TRIALS} "
              f"repeats={REPEATS} "
              "(min / median wall clock; overhead = paired-trial median)")
        for name, overhead, budget in (
            ("silenced", None, None),
            ("disabled", disabled_overhead, DISABLED_BUDGET),
            ("enabled ", enabled_overhead, ENABLED_BUDGET),
        ):
            runs = samples[name.strip()]
            line = (f"  {name} : {min(runs) * 1e3:8.2f} / "
                    f"{statistics.median(runs) * 1e3:8.2f} ms")
            if overhead is not None:
                line += f"  (overhead {overhead:+.2%}, budget {budget:.0%})"
            print(line)
        if best_disabled is None or disabled_overhead < best_disabled:
            best_disabled = disabled_overhead
        if best_enabled is None or enabled_overhead < best_enabled:
            best_enabled = enabled_overhead
        if best_disabled <= DISABLED_BUDGET and best_enabled <= ENABLED_BUDGET:
            break
        print("  over budget -- remeasuring (noise or regression?)")

    if best_disabled > DISABLED_BUDGET:
        failures.append(
            f"disabled-path overhead {best_disabled:.2%} exceeds "
            f"{DISABLED_BUDGET:.0%} in all {MAX_ATTEMPTS} attempts"
        )
    if best_enabled > ENABLED_BUDGET:
        failures.append(
            f"enabled-path overhead {best_enabled:.2%} exceeds "
            f"{ENABLED_BUDGET:.0%} in all {MAX_ATTEMPTS} attempts"
        )

    # 4. shm fan-in: per-worker + rolled-up series master-side
    shm_system = build(20_000)
    with obs.observed() as (_tracer, registry):
        solve(
            shm_system, backend="shm", options={"workers": SHM_WORKERS}
        )
    per_worker = 0
    for rank in range(SHM_WORKERS):
        series = [
            s for s in registry.series()
            if s.labels.get("proc") == f"worker-{rank}"
        ]
        print(f"  worker-{rank}: {len(series)} series")
        if series:
            per_worker += 1
    rollup = registry.get("engine.shm.worker.barrier_wait_s")
    if per_worker < SHM_WORKERS:
        failures.append(
            f"only {per_worker}/{SHM_WORKERS} workers produced "
            "proc-labeled series"
        )
    if rollup is None or rollup.count == 0:
        failures.append("no rolled-up barrier_wait_s series master-side")
    else:
        print(f"  rollup  : barrier_wait_s count={rollup.count} "
              f"p99={rollup.percentile(0.99):.2e}s")

    if failures:
        print("\nFAIL")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nobs overhead smoke ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
