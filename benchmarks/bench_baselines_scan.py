"""Baseline comparison -- prefix computation, four algorithms.

The paper builds on the classic parallel-prefix literature (Stone [2],
Jaja [3], Kogge & Stone [4]): its OrdinaryIR solver *is* recursive
doubling generalized to arbitrary index maps.  This bench reproduces
the classic work/depth trade-off table on the unit-stride case and
confirms the IR solver matches Kogge-Stone's profile exactly -- the
cost of its generality is zero on the classic instance:

* sequential: minimal work (n-1), linear depth;
* Kogge-Stone == OrdinaryIR: log-n depth, ~n·log n work;
* Blelloch: work-efficient (~3n), 2·log n depth.
"""

import math

from repro.analysis.reporting import ascii_table, banner
from repro.core.baselines import (
    blelloch_scan,
    kogge_stone_scan,
    sequential_scan,
)
from repro.core.operators import ADD
from repro.core.prefix import prefix_scan

N = 4096


def run_comparison(n=N):
    vals = list(range(1, n + 1))
    ref, seq = sequential_scan(vals, ADD)
    ks_out, ks = kogge_stone_scan(vals, ADD)
    bl_out, bl = blelloch_scan(vals, ADD)
    ir_out, ir_stats = prefix_scan(vals, ADD, collect_stats=True)
    assert ks_out == ref and bl_out == ref and ir_out == ref
    rows = [
        ("sequential", seq.ops, seq.depth),
        ("Kogge-Stone [4]", ks.ops, ks.depth),
        ("Blelloch (Jaja [3])", bl.ops, bl.depth),
        ("OrdinaryIR (this paper)", ir_stats.total_ops, ir_stats.depth),
    ]
    return rows


def test_baselines_scan(benchmark):
    rows = benchmark(run_comparison)
    table = {name: (ops, depth) for name, ops, depth in rows}
    log_n = int(math.log2(N))

    seq_ops, seq_depth = table["sequential"]
    assert seq_ops == N - 1 and seq_depth == N - 1

    ks_ops, ks_depth = table["Kogge-Stone [4]"]
    ir_ops, ir_depth = table["OrdinaryIR (this paper)"]
    # the IR solver matches Kogge-Stone's profile on the classic case
    assert ks_depth == log_n
    assert ir_depth in (log_n, log_n + 1)
    assert 0.5 < ir_ops / ks_ops < 1.5

    bl_ops, bl_depth = table["Blelloch (Jaja [3])"]
    assert bl_ops <= 3 * N
    assert bl_depth == 2 * log_n + 1
    # the classic trade-off: Blelloch does ~log n times less work
    assert ks_ops / bl_ops > log_n / 4


def main():
    rows = run_comparison()
    print(banner(f"Baselines: inclusive prefix sum of n = {N:,} values"))
    print(ascii_table(
        ("algorithm", "op-work", "depth"),
        [(name, f"{ops:,}", depth) for name, ops, depth in rows],
        align_right=[1, 2],
    ))
    print()
    print("OrdinaryIR == Kogge-Stone on the unit-stride case: the paper's")
    print("generalization to arbitrary g, f costs nothing on the classic")
    print("instance, while Blelloch trades depth for work-efficiency.")


if __name__ == "__main__":
    main()
