"""Figure 5 -- the expansion of ``X_i = X_{i-1} * X_{i-2}``.

The paper expands the recurrence for small n and observes that the
trace is ``A[0]^fib(i-1) * A[1]^fib(i)``.  This bench reproduces the
expansion, renders the n=3 tree the way the figure draws it, verifies
the Fibonacci powers through CAP, and solves the recurrence with the
full GIR pipeline against the sequential loop.
"""

from repro.analysis.reporting import banner, series_table
from repro.core import GIRSystem, modular_mul, run_gir
from repro.core.cap import count_all_paths
from repro.core.depgraph import build_dependence_graph
from repro.core.traces import gir_trace_tree, render_tree
from repro.engine import solve

N = 40
MOD = 10**9 + 7


def build(n=N):
    op = modular_mul(MOD)
    return GIRSystem.build(
        [2, 3] + [1] * n,
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        op,
    )


def run_fig5(n=N):
    system = build(n)
    graph = build_dependence_graph(system)
    cap = count_all_paths(graph)
    powers = [cap.powers_by_cell(graph, i) for i in range(n)]
    result = solve(system, collect_stats=True)
    parallel, stats = result.values, result.stats
    sequential = run_gir(system)
    return system, powers, parallel, sequential, stats


def test_fig5_fibonacci_powers(benchmark):
    system, powers, parallel, sequential, stats = benchmark(run_fig5)
    fib = [1, 1]
    for _ in range(N + 2):
        fib.append(fib[-1] + fib[-2])
    # the paper's claim: trace of X_i is A[0]^fib(i-1) * A[1]^fib(i)
    for i in range(N):
        assert powers[i] == {0: fib[i], 1: fib[i + 1]}
    assert parallel == sequential
    # CAP converges logarithmically even though powers are exponential
    assert stats.cap_iterations <= 6
    benchmark.extra_info["largest_power"] = powers[-1][1]


def main():
    system, powers, parallel, _seq, stats = run_fig5()
    print(banner("Figure 5: expansion of X_i = X_{i-1} * X_{i-2}"))
    small = build(3)
    print("expanded tree for n = 3 (paper's drawing):")
    print(" ", render_tree(gir_trace_tree(small, 2)))
    print()
    rows = [4, 8, 16, 32, N - 1]
    print(series_table("i", rows, {
        "power of A[0]": [powers[i][0] for i in rows],
        "power of A[1]": [powers[i][1] for i in rows],
    }))
    print()
    print(f"GIR pipeline == sequential loop; CAP took "
          f"{stats.cap_iterations} iterations for n = {N}")
    print(f"final value (mod {MOD}): {parallel[-1]}")


if __name__ == "__main__":
    main()
