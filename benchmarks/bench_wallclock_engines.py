"""Wall-clock comparison of the library's execution engines.

Not a paper artifact -- a library-quality check: the vectorized NumPy
OrdinaryIR engine should beat the pure-Python parallel reference and
be within a sane factor of the sequential loop at large n on one host
core (the parallel algorithm does log n times more work; the paper's
speedups are in *simulated processor time*, which
bench_fig3_ordinary_ir.py covers).
"""

import numpy as np
import pytest

from repro.core import FLOAT_MUL, OrdinaryIRSystem, run_ordinary
from repro.engine import solve

N = 100_000


def build(n=N):
    return OrdinaryIRSystem.build(
        np.full(n + 1, 1.0000001),
        np.arange(1, n + 1),
        np.arange(n),
        FLOAT_MUL,
    )


@pytest.fixture(scope="module")
def system():
    return build()


def test_wallclock_numpy_engine(benchmark, system):
    result = benchmark(lambda: solve(system, backend="numpy").values)
    assert len(result) == N + 1


def test_wallclock_python_engine(benchmark, system):
    small = build(10_000)  # the pure-Python engine is the slow reference
    result = benchmark(lambda: solve(small, backend="python").values)
    assert len(result) == 10_001


def test_wallclock_sequential_loop(benchmark, system):
    result = benchmark(run_ordinary, system)
    assert len(result) == N + 1


def _affine_recurrence(n):
    import numpy as np

    from repro.core.moebius import AffineRecurrence

    rng = np.random.default_rng(0)
    return AffineRecurrence.build(
        rng.normal(size=n + 1).tolist(),
        np.arange(1, n + 1),
        np.arange(n),
        (0.9 * rng.normal(size=n)).tolist(),
        rng.normal(size=n).tolist(),
    )


def test_wallclock_moebius_object_engine(benchmark):
    rec = _affine_recurrence(20_000)
    result = benchmark(
        lambda: solve(rec, options={"path": "object"}).values
    )
    assert len(result) == 20_001


def test_wallclock_moebius_affine_fast_path(benchmark):
    rec = _affine_recurrence(20_000)
    result = benchmark(
        lambda: solve(rec, options={"path": "affine"}).values
    )
    assert len(result) == 20_001


def main():
    import time

    system = build()
    for name, fn in (
        ("sequential loop", lambda: run_ordinary(system)),
        ("numpy parallel engine", lambda: solve(system, backend="numpy")),
    ):
        t0 = time.perf_counter()
        fn()
        print(f"{name:<24} {time.perf_counter() - t0:.4f}s  (n = {N:,})")
    small = build(10_000)
    t0 = time.perf_counter()
    solve(small, backend="python")
    print(f"{'python parallel engine':<24} {time.perf_counter() - t0:.4f}s  (n = 10,000)")


if __name__ == "__main__":
    main()
