"""Batched GIR trace evaluation: the GIRPlan-v2 payoff (Fig. 5 scale).

Not a paper artifact -- the perf contract of the array-backed CAP
refactor: on the Fibonacci-powers GIR family at ``n = 100,000``
(the paper's Fig. 5 workload, modular addition so path counts reduce
by the operator period), replaying a **cached plan** with the batched
evaluator must run at least ``MIN_SPEEDUP``x faster than the per-row
evaluator on the same plan, and both must match the sequential
``run_gir`` oracle bit-for-bit.  A small modular-*multiplication*
leg re-checks exactness on the second power-typed operator family
(period ``m - 1``).  ``main()`` returns nonzero when the speedup gate
or any exactness check fails, so ``regenerate_all.py`` (and the
regression differ, which gates on this bench) fail on a batched-path
regression.

Arms
----
* ``rows``      -- cached plan, per-row trace evaluation (the v1
  executor's cost profile);
* ``batched``   -- cached plan, deduplicated power table + one
  vectorized combine per distinct exponent;
* ``sequential``-- ``run_gir``, the oracle both arms must equal.
"""

import time

from repro.core import GIRSystem, run_gir
from repro.core.operators import modular_add, modular_mul
from repro.engine import solve

N = 100_000
MIN_SPEEDUP = 10.0
MOD = 10**9 + 7
MUL_N = 400
MUL_M = 1009  # prime, so modular_mul carries period m - 1


def fibonacci_powers(n, op):
    """x[i+2] = x[i+1] op x[i]: leaf exponents are Fibonacci numbers."""
    return GIRSystem.build(
        list(range(1, n + 3)),
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        list(range(n)),
        op,
    )


def _time(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def run(n=N):
    system = fibonacci_powers(n, modular_add(MOD))
    oracle_s, expect = _time(lambda: run_gir(system))

    # Plan once (CAP doubling + table reduction), replay twice.
    plan = solve(system, backend="numpy").plan
    assert plan.dispatch is None, "Fibonacci powers must take the CAP path"
    rows_s, rows_result = _time(
        lambda: solve(
            system, backend="numpy", plan=plan, options={"gir_eval": "rows"}
        )
    )
    batched_s, batched_result = _time(
        lambda: solve(
            system, backend="numpy", plan=plan, options={"gir_eval": "batched"}
        )
    )

    mul_system = fibonacci_powers(MUL_N, modular_mul(MUL_M))
    mul_expect = run_gir(mul_system)
    mul_result = solve(
        mul_system, backend="numpy", options={"gir_eval": "batched"}
    )

    return {
        "n": n,
        "sequential_s": oracle_s,
        "rows_s": rows_s,
        "batched_s": batched_s,
        "speedup_batched_vs_rows": rows_s / batched_s,
        "rows_exact": rows_result.values == expect,
        "batched_exact": batched_result.values == expect,
        "mul_exact": mul_result.values == mul_expect,
        "cap_iterations": plan.cap_iterations,
        "table_nnz": plan.table.nnz,
    }


def main() -> int:
    results = run()
    print(f"GIR batched trace evaluation, Fibonacci powers "
          f"n = {results['n']:,} (mod {MOD})")
    print(f"{'sequential run_gir (oracle)':<30} {results['sequential_s']:8.4f}s")
    print(f"{'cached plan, rows eval':<30} {results['rows_s']:8.4f}s")
    print(f"{'cached plan, batched eval':<30} {results['batched_s']:8.4f}s")
    print(f"speedup batched vs rows: "
          f"{results['speedup_batched_vs_rows']:.1f}x "
          f"(CAP iterations {results['cap_iterations']}, "
          f"table nnz {results['table_nnz']:,})")
    print(f"exact vs oracle: rows={results['rows_exact']} "
          f"batched={results['batched_exact']} "
          f"modular_mul(n={MUL_N})={results['mul_exact']}")
    failed = False
    for key in ("rows_exact", "batched_exact", "mul_exact"):
        if not results[key]:
            print(f"REGRESSION: {key} arm disagrees with run_gir")
            failed = True
    if results["speedup_batched_vs_rows"] < MIN_SPEEDUP:
        print(f"REGRESSION: batched eval under {MIN_SPEEDUP}x "
              f"over per-row eval on a cached plan")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    raise SystemExit(main())
