"""Extension -- the Livermore suite through the IR machinery.

Runs every kernel that has an IR-based parallel reimplementation
(15 of 24) against its sequential reference at a common problem size
and reports per-kernel agreement plus which parallel mechanism carried
it.  The assertion is the paper's implicit claim: the IR framework
*covers* these kernels -- same outputs, produced by map/fold/Moebius
machinery rather than the original loop-carried code.
"""

from repro.analysis.reporting import ascii_table, banner
from repro.livermore.classify import KERNEL_NAMES
from repro.livermore.data import kernel_inputs
from repro.livermore.kernels import run_kernel
from repro.livermore.parallel import PARALLEL_KERNELS

MECHANISM = {
    1: "vectorized map",
    2: "level-parallel wavefront",
    3: "fold (scatter-add)",
    5: "Moebius affine chain",
    7: "vectorized map",
    11: "Moebius affine chain",
    12: "vectorized map",
    13: "map + scatter-add",
    14: "map + scatter-add",
    18: "three map sweeps",
    19: "Moebius affine chains",
    21: "fold (scatter-add)",
    22: "vectorized map",
    23: "Moebius column sweeps",
    24: "fold (argmin)",
}


def _flat(v):
    if isinstance(v, (int, float)):
        yield v
    elif isinstance(v, list):
        for e in v:
            yield from _flat(e)


def _max_err(a, b):
    xa = list(_flat(a))
    xb = list(_flat(b))
    return max(
        (abs(x - y) / max(1.0, abs(x), abs(y)) for x, y in zip(xa, xb)),
        default=0.0,
    )


def run_suite(n=100, seed=1997):
    rows = []
    for k in sorted(PARALLEL_KERNELS):
        size = 16 if k == 21 else n
        d = kernel_inputs(k, size, seed=seed)
        seq = run_kernel(k, d)
        par = PARALLEL_KERNELS[k](d)
        err = max(
            _max_err(par[name], value)
            for name, value in seq.items()
            if name in par
        )
        rows.append((k, KERNEL_NAMES[k], MECHANISM[k], err))
    return rows


def test_livermore_parallel_suite(benchmark):
    rows = benchmark(run_suite)
    assert len(rows) == 15
    for k, _name, _mech, err in rows:
        assert err < 1e-7, (k, err)
    benchmark.extra_info["kernels_covered"] = len(rows)


def main():
    rows = run_suite()
    print(banner("Extension: Livermore kernels through the IR machinery "
                 "(15 of 24 covered)"))
    print(ascii_table(
        ("#", "kernel", "parallel mechanism", "max rel err vs sequential"),
        [(k, name, mech, f"{err:.2e}") for k, name, mech, err in rows],
        align_right=[0, 3],
    ))
    print()
    print("Kernels without a parallel version (4, 6, 9, 10, 15, 16, 17,")
    print("20) are either inherently sequential (data-dependent control")
    print("or degree-2 carried recurrences) or trivially row-parallel;")
    print("the census (bench_table1) records each one's classification.")


if __name__ == "__main__":
    main()
