"""Figure 6 -- the dependence graph of ``A_i = A_{i-1} * A_{i-2}``.

The paper draws G for i = 2..4 (1-based): final nodes for the three
assignments, initial-value leaves for the two seed cells, and an edge
per operand.  This bench reconstructs the graph, renders it as an
adjacency listing, and checks the construction rules (edges to earlier
iterations when the operand was assigned, to leaves otherwise).
"""

from repro.analysis.reporting import ascii_table, banner
from repro.core import GIRSystem, modular_mul
from repro.core.depgraph import build_dependence_graph

N = 4


def build(n=N):
    op = modular_mul(97)
    return GIRSystem.build(
        [1] * (n + 2),
        [i + 2 for i in range(n)],
        [i + 1 for i in range(n)],
        [i for i in range(n)],
        op,
    )


def run_fig6(n=N):
    system = build(n)
    graph = build_dependence_graph(system)
    listing = [
        (graph.node_label(i),
         ", ".join(f"{graph.node_label(t)}[{m}]" for t, m in sorted(graph.out_edges(i).items())))
        for i in range(graph.n)
    ]
    return graph, listing


def test_fig6_construction_rules(benchmark):
    graph, _ = benchmark(run_fig6)
    n = graph.n
    # iteration 0 reads the two seed cells: both leaves
    assert graph.out_edges(0) == {n + 0: 1, n + 1: 1}
    # iteration 1 reads it0's result and seed cell 1
    assert graph.out_edges(1) == {0: 1, n + 1: 1}
    # iterations >= 2 read the previous two iterations' results
    for i in range(2, n):
        assert graph.out_edges(i) == {i - 1: 1, i - 2: 1}
    assert graph.leaves() == [n + 0, n + 1]
    assert graph.depth() == n


def main():
    graph, listing = run_fig6()
    print(banner("Figure 6: dependence graph of A_i = A_{i-1} * A_{i-2}, "
                 f"n = {N}"))
    print(ascii_table(("node", "operand edges [multiplicity]"), listing))
    print()
    print(f"leaves (initial values): "
          f"{[graph.node_label(l) for l in graph.leaves()]}")
    print(f"graph depth: {graph.depth()}  "
          f"(CAP needs ceil(log2(depth)) iterations)")


if __name__ == "__main__":
    main()
