#!/usr/bin/env python
"""Diff two ``BENCH_results.json`` files and gate on regressions.

::

    python benchmarks/check_regression.py BASELINE.json CURRENT.json

Compares per-bench wall clocks and exits nonzero when

* any **speedup-gated** bench (the ones whose ``main()`` enforces a
  parallel-beats-baseline gate: plan reuse, batched GIR eval, the shm
  pool, serve coalescing) slowed down by more than the threshold
  (default 25%), or
* a bench that passed in the baseline fails in the current run, or
* a gated bench disappeared from the current file.

Other benches are reported informationally but never fail the check:
their wall clocks include artifact printing and scale sweeps whose
durations are intentionally load-dependent.  Tiny absolute times are
ignored (``--min-seconds``) -- a 0.01s -> 0.02s blip is scheduler
noise, not a regression.

Provenance (host, Python, NumPy, CPU count, git SHA) from both files
is printed so cross-machine comparisons are visibly apples-to-oranges.
"""

import argparse
import json
import sys

#: Benches whose own main() enforces a speedup gate; their wall clock
#: is a tracked performance contract, so the diff gates on them.
GATED = ("bench_plan_reuse", "bench_gir_powers", "bench_shm", "bench_serve")

DEFAULT_THRESHOLD = 0.25
DEFAULT_MIN_SECONDS = 0.05


def _load(path):
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    if "benches" not in doc:
        raise SystemExit(f"error: {path} is not a BENCH_results.json file")
    return doc


def _by_name(doc):
    return {record["name"]: record for record in doc.get("benches", [])}


def _provenance_line(doc):
    prov = doc.get("provenance", {})
    parts = [
        f"host={prov.get('host', '?')}",
        f"python={prov.get('python', doc.get('python', '?'))}",
        f"numpy={prov.get('numpy', doc.get('numpy', '?'))}",
        f"cpus={prov.get('cpu_count', '?')}",
        f"git={str(prov.get('git_sha'))[:12]}",
        f"at={prov.get('timestamp', '?')}",
    ]
    return "  ".join(parts)


def compare(baseline, current, *, threshold, min_seconds):
    """Returns ``(failures, report_lines)``."""
    base, cur = _by_name(baseline), _by_name(current)
    failures = []
    lines = []
    for name in sorted(set(base) | set(cur)):
        gated = name in GATED
        old, new = base.get(name), cur.get(name)
        tag = "gated" if gated else "info "
        if old is None:
            lines.append(f"  {tag}  {name:<34} new bench")
            continue
        if new is None:
            lines.append(f"  {tag}  {name:<34} MISSING from current")
            if gated:
                failures.append(f"{name}: missing from current results")
            continue
        if old.get("ok") and not new.get("ok"):
            lines.append(
                f"  {tag}  {name:<34} FAILED: {new.get('error')}"
            )
            failures.append(f"{name}: now failing ({new.get('error')})")
            continue
        t0, t1 = old.get("wall_clock_s"), new.get("wall_clock_s")
        if not t0 or t1 is None:
            lines.append(f"  {tag}  {name:<34} no timing to compare")
            continue
        delta = (t1 - t0) / t0
        verdict = ""
        if (
            gated
            and delta > threshold
            and max(t0, t1) >= min_seconds
        ):
            verdict = f"  REGRESSION (> {threshold:.0%})"
            failures.append(
                f"{name}: {t0:.3f}s -> {t1:.3f}s ({delta:+.1%})"
            )
        lines.append(
            f"  {tag}  {name:<34} {t0:8.3f}s -> {t1:8.3f}s "
            f"({delta:+7.1%}){verdict}"
        )
    return failures, lines


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("baseline", help="baseline BENCH_results.json")
    parser.add_argument("current", help="current BENCH_results.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fractional wall-clock regression tolerated on gated "
        "benches (default: 0.25)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        help="ignore regressions where both sides are under this many "
        "seconds (default: 0.05)",
    )
    args = parser.parse_args(argv)

    baseline = _load(args.baseline)
    current = _load(args.current)

    print(f"baseline: {_provenance_line(baseline)}")
    print(f"current : {_provenance_line(current)}")
    failures, lines = compare(
        baseline,
        current,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
    )
    print("\n".join(lines))
    if failures:
        print(f"\n{len(failures)} regression(s):")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nno gated regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
