"""Serving-layer load benchmark: the request-coalescing payoff gate.

Not a paper artifact -- the perf contract of ``repro.serve``: a
closed-loop fleet of concurrent clients hammering ONE shared affine
problem (the multi-tenant hot-problem shape) must get at least
``--min-speedup`` more requests/sec through the coalescing gather
window than through naive one-solve-per-request service, while every
response stays bit-exact against the sequential oracle and the
coalesced arm's p99 stays inside the registered ``SolvePolicy``
deadline.  ``main()`` returns nonzero when any contract is violated,
so ``regenerate_all.py`` (and the CI ``serve-load-smoke`` job) fail on
a serving regression.

Arms
----
* ``naive``     -- ``window_ms=0, max_batch=1``: every request is its
  own engine solve, serialized per session (what per-request service
  costs);
* ``coalesced`` -- a gather window dedups the hot working set
  (``--hot-set`` distinct payloads) and stacks the distinct rows into
  one ``(k, n)`` batched sweep.

Clients send sparse ``patch`` payloads and ask for ``digest`` replies,
so the wire cost stays small and the gate measures the engine path.
After both arms shut down the bench asserts no ``/dev/shm/repro_*``
segments leaked.
"""

import argparse
import asyncio
import concurrent.futures
import contextlib
import glob
import threading
import time

from repro.core.moebius import AffineRecurrence
from repro.engine import EngineOptions
from repro.serve import RecurrenceServer, ServeClient, ServeConfig
from repro.serve.server import _digest

N = 16_384
CLIENTS = 64
PER_CLIENT = 4
HOT_SET = 8
WINDOW_MS = 5.0
DEADLINE_S = 5.0
MIN_SPEEDUP = 5.0


def build(n=N):
    return AffineRecurrence.build(
        [1.0] * (n + 1),
        g=list(range(1, n + 1)),
        f=list(range(0, n)),
        a=[1.0] * n,
        b=[1.0] * n,
    )


def oracle_digests(rec, hot_set):
    """Expected reply digest per hot payload, from the sequential
    definition of the recurrence (pure Python, no engine)."""
    expected = {}
    for j in range(hot_set):
        out = list(rec.initial)
        out[0] = float(j)
        for i in range(rec.n):
            out[int(rec.g[i])] = rec.a[i] * out[int(rec.f[i])] + rec.b[i]
        expected[j] = _digest(out)
    return expected


@contextlib.contextmanager
def serving(config, system, options):
    """Run a RecurrenceServer on a daemon-thread event loop."""
    server = RecurrenceServer(config)
    problem = server.register(system, options=options)
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=_loop_main, args=(loop,), daemon=True)
    thread.start()
    host, port = asyncio.run_coroutine_threadsafe(
        server.start(), loop
    ).result(timeout=10)
    try:
        yield host, port, problem.fingerprint
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(
            timeout=10
        )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


def _loop_main(loop):
    asyncio.set_event_loop(loop)
    loop.run_forever()


def _drive(host, port, fingerprint, *, clients, per_client, hot_set):
    """Closed-loop load: each client thread owns one keep-alive
    connection and walks the hot payload set.  Returns per-request
    ``(payload_j, digest, coalesced, latency_s)`` tuples and the
    wall-clock of the whole fleet."""
    barrier = threading.Barrier(clients)

    def one_client(cid):
        rows = []
        with ServeClient(host, port) as client:
            barrier.wait()
            for r in range(per_client):
                j = (cid + r) % hot_set
                t0 = time.perf_counter()
                doc = client.solve(
                    fingerprint,
                    patch={0: float(j)},
                    tenant=f"t{cid % 8}",
                    request_id=f"c{cid}r{r}",
                    reply="digest",
                )
                rows.append(
                    (
                        j,
                        doc["digest"],
                        doc["coalesced"],
                        time.perf_counter() - t0,
                    )
                )
        return rows

    started = time.perf_counter()
    with concurrent.futures.ThreadPoolExecutor(clients) as pool:
        per_thread = list(pool.map(one_client, range(clients)))
    elapsed = time.perf_counter() - started
    return [row for rows in per_thread for row in rows], elapsed


def _quantile(sorted_xs, q):
    if not sorted_xs:
        return 0.0
    idx = min(len(sorted_xs) - 1, int(q * (len(sorted_xs) - 1) + 0.5))
    return sorted_xs[idx]


def run_arm(system, *, coalesce, clients, per_client, hot_set, window_ms,
            deadline_s):
    config = ServeConfig(
        port=0,
        window_ms=window_ms if coalesce else 0.0,
        max_batch=256 if coalesce else 1,
        tenant_quota=max(clients, 64),
        max_pending=4 * clients * per_client,
    )
    options = EngineOptions(
        backend="numpy",
        policy={"timeout_s": deadline_s} if coalesce else None,
    )
    with serving(config, system, options) as (host, port, fingerprint):
        # One warm-up solve keeps plan construction off the clock.
        with ServeClient(host, port) as warm:
            warm.solve(fingerprint, reply="digest")
        rows, elapsed = _drive(
            host,
            port,
            fingerprint,
            clients=clients,
            per_client=per_client,
            hot_set=hot_set,
        )
    latencies = sorted(r[3] for r in rows)
    return {
        "rows": rows,
        "elapsed_s": elapsed,
        "rps": len(rows) / elapsed if elapsed > 0 else float("inf"),
        "p50_s": _quantile(latencies, 0.50),
        "p99_s": _quantile(latencies, 0.99),
        "coalesced_frac": (
            sum(1 for r in rows if r[2]) / len(rows) if rows else 0.0
        ),
    }


def run(*, n=N, clients=CLIENTS, per_client=PER_CLIENT, hot_set=HOT_SET,
        window_ms=WINDOW_MS, deadline_s=DEADLINE_S,
        min_speedup=MIN_SPEEDUP, check=True):
    system = build(n)
    expected = oracle_digests(system, hot_set) if check else {}

    naive = run_arm(
        system,
        coalesce=False,
        clients=clients,
        per_client=per_client,
        hot_set=hot_set,
        window_ms=window_ms,
        deadline_s=deadline_s,
    )
    coalesced = run_arm(
        system,
        coalesce=True,
        clients=clients,
        per_client=per_client,
        hot_set=hot_set,
        window_ms=window_ms,
        deadline_s=deadline_s,
    )

    speedup = (
        coalesced["rps"] / naive["rps"] if naive["rps"] > 0 else float("inf")
    )
    total = clients * per_client
    print(
        f"n={n:,}  clients={clients}  requests={total}  "
        f"hot_set={hot_set}  window={window_ms:.1f}ms"
    )
    for label, arm in (("naive 1/req", naive), ("coalesced", coalesced)):
        print(
            f"  {label:<18}: {arm['rps']:8.1f} req/s   "
            f"p50={arm['p50_s'] * 1000:7.1f}ms  "
            f"p99={arm['p99_s'] * 1000:7.1f}ms  "
            f"coalesced={arm['coalesced_frac'] * 100:5.1f}%"
        )
    print(
        f"  speedup           : {speedup:8.2f}x  "
        f"(gate: >= {min_speedup:.1f})"
    )

    ok = True
    if speedup < min_speedup:
        print(
            f"GATE FAILED: coalesced serving delivered {speedup:.2f}x, "
            f"below the {min_speedup:.1f}x floor"
        )
        ok = False
    if coalesced["coalesced_frac"] <= 0.0:
        print("GATE FAILED: no request in the coalesced arm shared a window")
        ok = False
    if coalesced["p99_s"] > deadline_s:
        print(
            f"GATE FAILED: coalesced p99 {coalesced['p99_s']:.3f}s "
            f"exceeds the {deadline_s:.1f}s SolvePolicy deadline"
        )
        ok = False

    if check:
        mismatches = sum(
            1
            for arm in (naive, coalesced)
            for j, digest, _, _ in arm["rows"]
            if digest != expected[j]
        )
        print(
            "  oracle parity     : "
            + ("exact" if mismatches == 0 else f"{mismatches} MISMATCHES")
        )
        ok = ok and mismatches == 0

    leaked = glob.glob("/dev/shm/repro_*")
    if leaked:
        print(f"GATE FAILED: leaked shm segments: {leaked}")
        ok = False
    else:
        print("  shm leak check    : clean")

    return ok, speedup


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=N)
    parser.add_argument("--clients", type=int, default=CLIENTS)
    parser.add_argument("--per-client", type=int, default=PER_CLIENT)
    parser.add_argument("--hot-set", type=int, default=HOT_SET)
    parser.add_argument("--window-ms", type=float, default=WINDOW_MS)
    parser.add_argument("--deadline", type=float, default=DEADLINE_S)
    parser.add_argument("--min-speedup", type=float, default=MIN_SPEEDUP)
    parser.add_argument(
        "--check",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="verify every reply digest against the sequential oracle",
    )
    args, _unknown = parser.parse_known_args()
    ok, _ = run(
        n=args.n,
        clients=args.clients,
        per_client=args.per_client,
        hot_set=args.hot_set,
        window_ms=args.window_ms,
        deadline_s=args.deadline,
        min_speedup=args.min_speedup,
        check=args.check,
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
