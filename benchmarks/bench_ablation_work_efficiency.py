"""Ablation -- pointer jumping vs. a work-efficient chain scan.

The paper's OrdinaryIR algorithm performs Theta(n log n) operator work
(every active trace works every round).  On inputs whose trace forest
has no branching -- disjoint chains, which include scans and the Fig-3
workload itself -- the same values are inclusive prefixes, solvable
work-efficiently (Blelloch) with ~3n operations at twice the depth.

This ablation quantifies the classic trade-off on the paper's own
workload shape, and shows where pointer jumping earns its keep: the
chain scan simply *does not apply* once traces share predecessors
(arbitrary ``f``), which is exactly the generality the paper is about.
"""

import math

from repro.analysis.reporting import banner, series_table
from repro.core import CONCAT, OrdinaryIRSystem, run_ordinary
from repro.core.baselines import work_efficient_chain_solve
from repro.engine import solve

NS = [256, 1024, 4096, 16384]


def chain(n):
    return OrdinaryIRSystem.build(
        [(j,) for j in range(n + 1)],
        list(range(1, n + 1)),
        list(range(n)),
        CONCAT,
    )


def run_ablation():
    rows = {"n": NS, "pj_work": [], "pj_depth": [], "scan_work": [],
            "scan_depth": []}
    for n in NS:
        system = chain(n)
        res = solve(system, backend="numpy", collect_stats=True)
        out_pj, s_pj = res.values, res.stats
        out_we, s_we = work_efficient_chain_solve(system)
        assert out_pj == out_we == run_ordinary(system)
        rows["pj_work"].append(s_pj.total_ops)
        rows["pj_depth"].append(s_pj.depth)
        rows["scan_work"].append(s_we.ops)
        rows["scan_depth"].append(s_we.depth)
    return rows


def test_ablation_work_efficiency(benchmark):
    # the sweep takes ~1.5 s; one measured round keeps the suite fast
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    for i, n in enumerate(NS):
        log_n = math.ceil(math.log2(n))
        # pointer jumping: Theta(n log n) work (exactly
        # n*log n - (n - 1) + 1 op-applications on a single chain),
        # log n + 1 depth
        assert rows["pj_work"][i] == n * log_n - n + 2
        assert rows["pj_depth"][i] == log_n + 1
        # chain scan: <= ~3n work, ~2 log n depth
        assert rows["scan_work"][i] <= 3.1 * n
        assert rows["scan_depth"][i] <= 2 * log_n + 3
    # the separation grows like log n
    ratio_small = rows["pj_work"][0] / rows["scan_work"][0]
    ratio_big = rows["pj_work"][-1] / rows["scan_work"][-1]
    assert ratio_big > ratio_small

    # the scan does NOT generalize: branching inputs are rejected
    import pytest

    branching = OrdinaryIRSystem.build(
        [(c,) for c in "abcd"], [1, 2, 3], [0, 1, 1], CONCAT
    )
    with pytest.raises(ValueError, match="branching"):
        work_efficient_chain_solve(branching)
    # ... while pointer jumping handles them (the paper's point)
    assert solve(branching, backend="numpy").values == run_ordinary(branching)


def main():
    rows = run_ablation()
    print(banner("Ablation: pointer jumping vs work-efficient chain scan "
                 "(disjoint-chain inputs)"))
    print(series_table("n", rows["n"], {
        "pointer_jumping work": rows["pj_work"],
        "chain_scan work": rows["scan_work"],
        "pj depth": rows["pj_depth"],
        "scan depth": rows["scan_depth"],
        "work ratio": [round(a / b, 2) for a, b in zip(rows["pj_work"], rows["scan_work"])],
    }))
    print()
    print("On chains, Blelloch-style scanning does ~log(n)/3 times less")
    print("work at ~2x the depth.  But it requires an unbranched trace")
    print("forest and an operator identity; pointer jumping needs neither")
    print("-- the generality the paper trades that work factor for.")


if __name__ == "__main__":
    main()
