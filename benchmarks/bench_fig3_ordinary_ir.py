"""Figure 3 -- the paper's headline measurement.

"The results of running the OrdinaryIR algorithm for n = 50,000":
simulated instruction time (SimParC units in the paper; our
cost-model units here) of the parallel OrdinaryIR solution vs. the
original sequential loop, swept over the processor count P.

Expected shape (and what the assertions check):

* the sequential curve is flat at Theta(n);
* the parallel curve is Theta((n/P) log n): slope ~ -1 on log-log
  axes until P approaches n;
* the curves cross at a small multiple of log2(n) processors --
  beyond that the parallel algorithm wins, by ~P/log n at large P.

Absolute instruction counts are cost-model constants, not SimParC's;
the shape is the reproduction target (see EXPERIMENTS.md).
"""

import math

import numpy as np

from repro.analysis.complexity import loglog_slope
from repro.analysis.reporting import banner, series_table
from repro.core import FLOAT_MUL, OrdinaryIRSystem, processor_sweep
from repro.pram import profile_ordinary

N = 50_000
P_MAX = 4096


def build_system(n=N):
    """The Fig-3 workload: a maximal chain (worst-case trace depth),
    matching the paper's use of a full-length recurrence."""
    initial = np.full(n + 1, 1.0000001)
    return OrdinaryIRSystem.build(
        initial, np.arange(1, n + 1), np.arange(n), FLOAT_MUL
    )


def run_fig3(n=N):
    system = build_system(n)
    _result, profile = profile_ordinary(system)
    grid = processor_sweep(P_MAX)
    rows = profile.sweep(grid)
    return profile, grid, rows


def test_fig3_parallel_ir_sweep(benchmark):
    profile, grid, rows = benchmark(run_fig3)

    seq = profile.sequential_time()
    par = [r["parallel_time"] for r in rows]

    # sequential flat at Theta(n)
    assert seq == N * 8  # n * per-iteration instruction constant

    # parallel curve decreasing, slope ~ -1 on log-log until P ~ n
    assert par == sorted(par, reverse=True)
    slope = loglog_slope(grid[:8], [float(t) for t in par[:8]])
    assert abs(slope + 1.0) < 0.05

    # crossover at a small multiple of log2(n)
    cross = profile.crossover_processors()
    assert math.log2(N) <= cross <= 8 * math.log2(N)

    # large-P speedup ~ P / log n (paper: T = (n/P) log n)
    big_p = grid[-1]
    speedup = rows[-1]["speedup"]
    assert speedup > big_p / (4 * math.log2(N))

    benchmark.extra_info["sequential_time"] = seq
    benchmark.extra_info["crossover_P"] = cross
    benchmark.extra_info["speedup_at_Pmax"] = round(speedup, 2)


def main():
    profile, grid, rows = run_fig3()
    print(banner(f"Figure 3: OrdinaryIR, n = {N:,} "
                 f"(instruction units; paper used SimParC assembly units)"))
    print(series_table(
        "P",
        grid,
        {
            "parallel_IR": [r["parallel_time"] for r in rows],
            "original_loop": [r["sequential_time"] for r in rows],
            "speedup": [r["speedup"] for r in rows],
        },
    ))
    print()
    print(f"rounds executed      : {profile.rounds} "
          f"(= ceil(log2 n) = {math.ceil(math.log2(N))})")
    print(f"crossover            : P = {profile.crossover_processors()} "
          f"(~{profile.crossover_processors() / math.log2(N):.1f} x log2 n)")
    slope = loglog_slope(grid[:8], [float(r['parallel_time']) for r in rows[:8]])
    print(f"log-log slope (P<=128): {slope:.3f}  (ideal (n/P)log n model: -1)")


if __name__ == "__main__":
    main()
