#!/usr/bin/env python
"""CI smoke: the ``repro.check`` plan verifier must be sound, complete
on the planner's own output, and cheap.

Three gates over a benchmark-shaped problem matrix (all three plan
families; ordinary plans also re-verified after a
``plan_to_dict``/``plan_from_dict`` round trip, the ``repro check``
file path):

1. **Acceptance** -- every genuine planner schedule verifies clean,
   including shm shard layouts for 1/2/4/8 workers.  One rejection
   fails the job: the verifier would be crying wolf in production.
2. **Mutation rejection** -- :func:`repro.check.mutate.mutation_campaign`
   corrupts each ordinary schedule (round swaps, gather perturbations,
   dropped rounds, duplicated active ids, predecessor corruption,
   truncation, one-sided shard-boundary shifts) plus each GIR CAP
   power table (exponent perturbation, row-pointer truncation, cell
   swaps, pointer-repaired leaf drift) and the verifier must
   reject at least ``REJECT_FLOOR`` (95%) of the mutants.  The floor
   exists because a mutation can, rarely, land on a semantically
   equivalent schedule; in practice rejection is 100%.
3. **Overhead** -- aggregate verify time across the matrix must stay
   under ``OVERHEAD_BUDGET`` (10%) of aggregate plan-build time.
   Per-family ratios are printed but not gated: a tiny ordinary plan
   verifies in microseconds while GIR CAP planning dominates its own
   check by orders of magnitude, and the aggregate is what the
   ``verify_plan=True`` opt-in costs a mixed workload.  A breached
   budget is remeasured up to ``MAX_ATTEMPTS`` times (noise vs
   regression).

Exit 0 on success, 1 on any violated gate.
"""

import os
import sys
import time

ORDINARY_N = int(os.environ.get("REPRO_SMOKE_N", "20000"))
GIR_N = int(os.environ.get("REPRO_SMOKE_GIR_N", "40"))
WORKER_COUNTS = (1, 2, 4, 8)
MUTATION_SEEDS = range(int(os.environ.get("REPRO_SMOKE_SEEDS", "6")))
REJECT_FLOOR = 0.95
OVERHEAD_BUDGET = float(os.environ.get("REPRO_SMOKE_VERIFY_BUDGET", "0.10"))
MAX_ATTEMPTS = int(os.environ.get("REPRO_SMOKE_ATTEMPTS", "3"))


def build_matrix():
    """(label, system) pairs mirroring the benchmark workloads."""
    import numpy as np

    from repro.core.moebius import RationalRecurrence
    from repro.core.workloads import (
        chain_system,
        double_chain_gir_system,
        fibonacci_gir_system,
        forest_system,
        random_ordinary_system,
        scatter_system,
    )

    n = ORDINARY_N
    rng = np.random.default_rng(11)
    moebius = RationalRecurrence.build(
        rng.uniform(0.5, 1.5, n + 1).tolist(),
        np.arange(1, n + 1),
        np.arange(n),
        rng.uniform(0.5, 1.5, n).tolist(),
        rng.uniform(0.5, 1.5, n).tolist(),
        rng.uniform(0.1, 0.9, n).tolist(),
        rng.uniform(1.0, 2.0, n).tolist(),
    )
    return [
        ("ordinary/chain", chain_system(n)),
        ("ordinary/random", random_ordinary_system(n, seed=3)),
        ("ordinary/forest", forest_system([n // 2] + [8] * (n // 64))),
        ("moebius/random", moebius),
        ("gir/fibonacci", fibonacci_gir_system(GIR_N)),
        ("gir/double-chain", double_chain_gir_system(GIR_N)),
        ("gir/scatter", scatter_system(8 * GIR_N, 24, seed=5)),
    ]


def warm_up():
    """Pay the one-time import and first-call costs (module loading,
    numpy ufunc dispatch caches) outside the timed region."""
    from repro.check import verify_plan
    from repro.core.workloads import chain_system
    from repro.engine import solve
    from repro.engine.planner import PlanCache

    result = solve(chain_system(64), backend="numpy", cache=PlanCache())
    verify_plan(result.plan, workers=WORKER_COUNTS)


def acquire_plans(matrix):
    """Build each problem's plan through the engine (fresh cache),
    timing plan acquisition; returns rows of
    ``(label, family, problem, system, plan, plan_seconds)``."""
    from repro.engine import solve
    from repro.engine.planner import PlanCache
    from repro.engine.problem import Problem

    rows = []
    for label, system in matrix:
        problem = Problem.from_system(system)
        t0 = time.perf_counter()
        result = solve(system, backend="numpy", cache=PlanCache())
        plan_s = time.perf_counter() - t0
        if result.plan is None:
            raise SystemExit(f"FAIL: {label}: engine returned no plan")
        rows.append((label, problem.family, problem, system, result.plan, plan_s))
    return rows


def gate_acceptance(rows):
    """Gate 1: genuine plans (and their serialized round trips) verify
    clean; returns (failures, total_verify_seconds, per-row seconds)."""
    from repro.check import verify_plan
    from repro.engine.plan import plan_from_dict, plan_to_dict

    failures = []
    verify_s = {}
    for label, family, problem, system, plan, _plan_s in rows:
        t0 = time.perf_counter()
        report = verify_plan(
            plan,
            problem,
            system=system if family == "gir" else None,
            workers=WORKER_COUNTS,
        )
        verify_s[label] = time.perf_counter() - t0
        if not report.ok:
            failures.append((label, report.errors[0].describe()))
            continue
        rehydrated = plan_from_dict(plan_to_dict(plan))
        round_trip = verify_plan(
            rehydrated,
            problem,
            system=system if family == "gir" else None,
            workers=WORKER_COUNTS,
        )
        if not round_trip.ok:
            failures.append(
                (f"{label} (round-trip)", round_trip.errors[0].describe())
            )
        print(
            f"  accept {label:<22} checks={report.checks_run:>6} "
            f"verify={verify_s[label] * 1e3:8.2f} ms"
        )
    return failures, verify_s


def ordinary_schedule_of(family, plan):
    """The mutable ordinary schedule nested in any plan family."""
    if family == "ordinary":
        return plan
    if family == "moebius":
        return plan.ordinary
    return plan.dispatch  # gir; None for CAP-only dispatch-free plans


def gate_mutations(rows):
    """Gate 2: campaign every ordinary schedule -- and every GIR CAP
    power table against the system-backed oracle; count rejections."""
    from repro.check import mutation_campaign, verify_plan, verify_shard_layout

    total = rejected = 0
    survivors = []
    for label, family, _problem, system, plan, _plan_s in rows:
        sched = ordinary_schedule_of(family, plan)
        if sched is not None:
            for mut in mutation_campaign(sched, seeds=MUTATION_SEEDS):
                total += 1
                if mut.boundaries is not None:
                    report = verify_shard_layout(
                        mut.plan, mut.workers, boundaries=mut.boundaries
                    )
                else:
                    report = verify_plan(mut.plan)
                if report.ok:
                    survivors.append((label, mut.kind, mut.description))
                else:
                    rejected += 1
        if family == "gir" and getattr(plan, "table", None) is not None:
            # CAP-family plans: the v2 CSR mutation classes, verified
            # against the dependence-graph oracle.
            for mut in mutation_campaign(plan, seeds=MUTATION_SEEDS):
                total += 1
                report = verify_plan(mut.plan, system=system)
                if report.ok:
                    survivors.append((label, mut.kind, mut.description))
                else:
                    rejected += 1
    return total, rejected, survivors


def main():
    print(
        f"plan-verify smoke: n={ORDINARY_N} gir_n={GIR_N} "
        f"workers={WORKER_COUNTS} budget={OVERHEAD_BUDGET:.0%}"
    )
    matrix = build_matrix()
    warm_up()

    for attempt in range(1, MAX_ATTEMPTS + 1):
        rows = acquire_plans(matrix)
        failures, verify_s = gate_acceptance(rows)
        if failures:
            for label, detail in failures:
                print(f"FAIL: genuine plan rejected: {label}: {detail}")
            return 1

        plan_total = sum(r[5] for r in rows)
        verify_total = sum(verify_s.values())
        ratio = verify_total / plan_total if plan_total else 0.0
        for label, _family, _problem, _system, _plan, plan_s in rows:
            per = verify_s[label] / plan_s if plan_s else 0.0
            print(
                f"  timing {label:<22} plan={plan_s * 1e3:8.2f} ms "
                f"verify/plan={per:6.1%}"
            )
        print(
            f"aggregate verify/plan = {verify_total * 1e3:.2f}/"
            f"{plan_total * 1e3:.2f} ms = {ratio:.1%} "
            f"(budget {OVERHEAD_BUDGET:.0%})"
        )
        if ratio <= OVERHEAD_BUDGET:
            break
        if attempt == MAX_ATTEMPTS:
            print(
                f"FAIL: verify overhead {ratio:.1%} > {OVERHEAD_BUDGET:.0%} "
                f"after {MAX_ATTEMPTS} attempts"
            )
            return 1
        print(f"  overhead breached on attempt {attempt}; remeasuring...")

    total, rejected, survivors = gate_mutations(rows)
    rate = rejected / total if total else 0.0
    print(f"mutations: {rejected}/{total} rejected ({rate:.1%})")
    if total == 0:
        print("FAIL: mutation campaign produced no mutants")
        return 1
    for label, kind, desc in survivors:
        print(f"  survivor: {label} [{kind}] {desc}")
    if rate < REJECT_FLOOR:
        print(f"FAIL: rejection rate {rate:.1%} < floor {REJECT_FLOOR:.0%}")
        return 1

    print("plan-verify smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
